//! The α–β (Hockney) cost model that substitutes for the paper's A100
//! cluster.
//!
//! Every simulated quantity is derived from the constants in [`CostParams`]:
//! compute time is `flops / flops_rate + kernels · kernel_overhead`, and
//! each collective charges latency (α) per software step plus bytes / β on
//! the slowest link its group spans. The Table 1 / Table 2 reproductions
//! report these virtual seconds; the constants are calibrated to A100-class
//! hardware so *relative* results (who wins, by what factor) carry over.

use crate::topology::{GroupPlacement, Link};

/// Collective operations the fabric implements. Used for statistics keys and
/// cost formulas.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectiveOp {
    Broadcast,
    Reduce,
    AllReduce,
    AllGather,
    Gather,
    Scatter,
    ReduceScatter,
    AllToAll,
    Shift,
    Barrier,
    SendRecv,
}

impl CollectiveOp {
    pub const ALL: [CollectiveOp; 11] = [
        CollectiveOp::Broadcast,
        CollectiveOp::Reduce,
        CollectiveOp::AllReduce,
        CollectiveOp::AllGather,
        CollectiveOp::Gather,
        CollectiveOp::Scatter,
        CollectiveOp::ReduceScatter,
        CollectiveOp::AllToAll,
        CollectiveOp::Shift,
        CollectiveOp::Barrier,
        CollectiveOp::SendRecv,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            CollectiveOp::Broadcast => "broadcast",
            CollectiveOp::Reduce => "reduce",
            CollectiveOp::AllReduce => "all_reduce",
            CollectiveOp::AllGather => "all_gather",
            CollectiveOp::Gather => "gather",
            CollectiveOp::Scatter => "scatter",
            CollectiveOp::ReduceScatter => "reduce_scatter",
            CollectiveOp::AllToAll => "all_to_all",
            CollectiveOp::Shift => "shift",
            CollectiveOp::Barrier => "barrier",
            CollectiveOp::SendRecv => "send_recv",
        }
    }
}

/// Breakdown of one collective's simulated duration under the two-level
/// (topology-aware) schedule. Produced by
/// [`CostParams::phased_collective_time`]; `total` is the single number the
/// charging sites feed into the clocks, so split-phase/overlap accounting
/// and trace-event shapes are unchanged from the flat model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhasedCost {
    /// Seconds of the intra-node NVLink phase(s) of the two-level schedule.
    pub intra: f64,
    /// Seconds of the inter-node InfiniBand phase of the two-level schedule.
    pub inter: f64,
    /// Seconds the legacy flat model charges: the single-level algorithm on
    /// the group's worst link.
    pub flat: f64,
    /// Seconds actually charged: the cheaper of the flat algorithm and the
    /// two-level schedule, floored at the pure-NVLink bound.
    pub total: f64,
}

impl PhasedCost {
    /// True when the two-level schedule strictly undercuts the flat charge
    /// at this size (the interesting half of the crossover).
    pub fn hierarchical_won(&self) -> bool {
        self.total < self.flat
    }
}

/// Calibration constants of the simulated testbed.
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Effective per-GPU compute throughput in flop/s. 200 TFLOP/s models an
    /// A100 running fp16/bf16 tensor-core GEMMs (312 TFLOP/s peak) at the
    /// ~65% efficiency large Transformer GEMMs reach in practice.
    pub flops_rate: f64,
    /// Fixed kernel-launch overhead per flop-bearing tensor op, seconds.
    /// Calibrated low (2 µs) because the simulator's op granularity is
    /// finer than a fused production kernel schedule.
    pub kernel_overhead: f64,
    /// NVLink bandwidth, bytes/s (paper: 200 GB/s).
    pub nvlink_bandwidth: f64,
    /// NVLink per-message latency, seconds.
    pub nvlink_latency: f64,
    /// InfiniBand bandwidth, bytes/s (paper: 200 Gb/s = 25 GB/s).
    pub ib_bandwidth: f64,
    /// InfiniBand per-message latency, seconds.
    pub ib_latency: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        Self::a100_cluster()
    }
}

impl CostParams {
    /// Constants calibrated to the paper's testbed (§4).
    pub fn a100_cluster() -> Self {
        Self {
            flops_rate: 200e12,
            kernel_overhead: 2e-6,
            nvlink_bandwidth: 200e9,
            nvlink_latency: 4e-6,
            ib_bandwidth: 25e9,
            ib_latency: 12e-6,
        }
    }

    /// A zero-latency, infinite-bandwidth variant: isolates pure compute in
    /// ablations (communication becomes free).
    pub fn free_comm(mut self) -> Self {
        self.nvlink_latency = 0.0;
        self.ib_latency = 0.0;
        self.nvlink_bandwidth = f64::INFINITY;
        self.ib_bandwidth = f64::INFINITY;
        self
    }

    /// (α seconds, β bytes/s) of a link.
    pub fn link_params(&self, link: Link) -> (f64, f64) {
        match link {
            Link::Local => (0.0, f64::INFINITY),
            Link::NvLink => (self.nvlink_latency, self.nvlink_bandwidth),
            Link::InfiniBand => (self.ib_latency, self.ib_bandwidth),
        }
    }

    /// Simulated compute time for `flops` of math across `kernels` launches.
    pub fn compute_time(&self, flops: f64, kernels: u64) -> f64 {
        flops / self.flops_rate + kernels as f64 * self.kernel_overhead
    }

    /// Simulated duration of one collective over a group of `n` ranks whose
    /// slowest link is `link`, where each participating message carries
    /// `bytes` bytes (the payload size of one rank's contribution).
    ///
    /// Formulas are the standard *pipelined* tree/ring costs NCCL-class
    /// libraries achieve:
    /// * broadcast / reduce / scatter / gather: pipelined binomial tree,
    ///   `⌈log₂ n⌉·α + bytes/β` (latency pays the tree depth; bandwidth is
    ///   paid once because large messages are chunked and pipelined)
    /// * all-reduce: ring, `2(n−1)α + 2 (n−1)/n · bytes/β`
    /// * all-gather: ring, `(n−1)α + (n−1) · bytes/β` (each step moves one
    ///   rank's block)
    /// * reduce-scatter: ring, `(n−1)α + (n−1)/n · bytes/β` — the first
    ///   half of the ring all-reduce (`bytes` is the full input each rank
    ///   contributes; each keeps a `1/n` slice of the sum)
    /// * all-to-all: pairwise exchange, `(n−1)α + (n−1)/n · bytes/β`
    ///   (`bytes` is one rank's full payload; each peer receives `1/n`)
    /// * shift: one concurrent point-to-point round, `α + bytes/β`
    /// * barrier: `2α⌈log₂ n⌉`
    /// * send/recv: `α + bytes/β`
    pub fn collective_time(&self, op: CollectiveOp, n: usize, bytes: usize, link: Link) -> f64 {
        let (alpha, beta) = self.link_params(link);
        if n <= 1 && !matches!(op, CollectiveOp::SendRecv) {
            return 0.0;
        }
        let b = bytes as f64;
        let nf = n as f64;
        let log_n = (n as f64).log2().ceil();
        match op {
            CollectiveOp::Broadcast
            | CollectiveOp::Reduce
            | CollectiveOp::Scatter
            | CollectiveOp::Gather => log_n * alpha + b / beta,
            CollectiveOp::AllReduce => 2.0 * (nf - 1.0) * alpha + 2.0 * (nf - 1.0) / nf * b / beta,
            CollectiveOp::AllGather => (nf - 1.0) * (alpha + b / beta),
            CollectiveOp::ReduceScatter | CollectiveOp::AllToAll => {
                (nf - 1.0) * alpha + (nf - 1.0) / nf * b / beta
            }
            CollectiveOp::Shift | CollectiveOp::SendRecv => alpha + b / beta,
            CollectiveOp::Barrier => 2.0 * alpha * log_n,
        }
    }

    /// Simulated duration of one collective over a group placed as `p`
    /// (from [`crate::topology::Topology::placement`]), decomposed into an
    /// intra-node NVLink phase and an inter-node InfiniBand phase.
    ///
    /// The two-level schedule mirrors what NCCL-class libraries do on
    /// NVLink-island clusters: stage the op inside each node on NVLink
    /// first/last and run the cross-node step over one leader per node on
    /// InfiniBand, so the slow fabric carries `nodes` participants instead
    /// of `members`:
    /// * broadcast / reduce / scatter / gather: IB tree over the node
    ///   leaders + NVLink tree inside the fullest node;
    /// * all-reduce: NVLink reduce to the node leader, IB ring all-reduce
    ///   over leaders, NVLink broadcast back;
    /// * all-gather: NVLink gather to the leader, IB ring all-gather of the
    ///   per-node superblocks, NVLink broadcast of the full result;
    /// * barrier: NVLink barrier per node + IB barrier over leaders;
    /// * shift / send-recv: point-to-point rounds have no hierarchy — they
    ///   are charged flat.
    ///
    /// The charged total applies **size-based algorithm selection**: the
    /// scheduler picks whichever of the flat single-level algorithm and the
    /// two-level schedule is cheaper (`min`), and a spread placement never
    /// beats packing the whole group on one NVLink island (the pure-NVLink
    /// cost is a floor — `max`). Consequently for every placement
    /// `flat(NVLink) ≤ total ≤ flat(worst link)`, with the two-level
    /// schedule strictly cheaper than flat IB at latency-relevant sizes
    /// whenever several members share a node, and exactly equal to the flat
    /// NVLink charge for intra-node groups.
    pub fn phased_collective_time(
        &self,
        op: CollectiveOp,
        bytes: usize,
        p: GroupPlacement,
    ) -> PhasedCost {
        let n = p.members;
        if p.nodes <= 1 {
            // Intra-node (or singleton) group: there is no inter-node phase
            // and the two-level schedule degenerates to the flat NVLink
            // algorithm, identically to the legacy worst-link charge.
            let link = if n <= 1 { Link::Local } else { Link::NvLink };
            let flat = self.collective_time(op, n, bytes, link);
            return PhasedCost { intra: flat, inter: 0.0, flat, total: flat };
        }
        let flat = self.collective_time(op, n, bytes, Link::InfiniBand);
        let m = p.max_per_node;
        let (intra, inter) = match op {
            CollectiveOp::Broadcast
            | CollectiveOp::Reduce
            | CollectiveOp::Scatter
            | CollectiveOp::Gather => (
                self.collective_time(op, m, bytes, Link::NvLink),
                self.collective_time(op, p.nodes, bytes, Link::InfiniBand),
            ),
            CollectiveOp::AllReduce => (
                self.collective_time(CollectiveOp::Reduce, m, bytes, Link::NvLink)
                    + self.collective_time(CollectiveOp::Broadcast, m, bytes, Link::NvLink),
                self.collective_time(CollectiveOp::AllReduce, p.nodes, bytes, Link::InfiniBand),
            ),
            CollectiveOp::AllGather => (
                self.collective_time(CollectiveOp::Gather, m, bytes, Link::NvLink)
                    + self.collective_time(
                        CollectiveOp::Broadcast,
                        m,
                        n.saturating_mul(bytes),
                        Link::NvLink,
                    ),
                self.collective_time(
                    CollectiveOp::AllGather,
                    p.nodes,
                    m.saturating_mul(bytes),
                    Link::InfiniBand,
                ),
            ),
            CollectiveOp::ReduceScatter => (
                self.collective_time(CollectiveOp::Reduce, m, bytes, Link::NvLink)
                    + self.collective_time(CollectiveOp::Scatter, m, bytes, Link::NvLink),
                self.collective_time(CollectiveOp::ReduceScatter, p.nodes, bytes, Link::InfiniBand),
            ),
            CollectiveOp::Barrier => (
                self.collective_time(CollectiveOp::Barrier, m, 0, Link::NvLink),
                self.collective_time(CollectiveOp::Barrier, p.nodes, 0, Link::InfiniBand),
            ),
            // All-to-all is a pairwise exchange: every rank talks to every
            // peer directly, so a leader hierarchy saves nothing — charged
            // flat, like the other point-to-point shapes.
            CollectiveOp::AllToAll | CollectiveOp::Shift | CollectiveOp::SendRecv => (0.0, flat),
        };
        let nv_floor = self.collective_time(op, n, bytes, Link::NvLink);
        let total = flat.min((intra + inter).max(nv_floor));
        PhasedCost { intra, inter, flat, total }
    }

    /// Total bytes a collective puts on the wire (for volume accounting):
    /// the standard logical volumes of the algorithms above.
    pub fn wire_bytes(&self, op: CollectiveOp, n: usize, bytes: usize) -> u64 {
        if n <= 1 && !matches!(op, CollectiveOp::SendRecv) {
            return 0;
        }
        let b = bytes as u64;
        let n64 = n as u64;
        match op {
            CollectiveOp::Broadcast | CollectiveOp::Reduce => b * (n64 - 1),
            CollectiveOp::AllReduce => 2 * b * (n64 - 1),
            CollectiveOp::AllGather | CollectiveOp::Gather | CollectiveOp::Scatter => b * (n64 - 1),
            CollectiveOp::ReduceScatter | CollectiveOp::AllToAll => b * (n64 - 1),
            CollectiveOp::Shift => b * n64,
            CollectiveOp::Barrier => 0,
            CollectiveOp::SendRecv => b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_combines_rate_and_overhead() {
        let p = CostParams::a100_cluster();
        let t = p.compute_time(200e12, 2);
        assert!((t - (1.0 + 2.0 * 2e-6)).abs() < 1e-9);
    }

    #[test]
    fn singleton_collectives_are_free() {
        let p = CostParams::a100_cluster();
        for op in CollectiveOp::ALL {
            if op != CollectiveOp::SendRecv {
                assert_eq!(p.collective_time(op, 1, 1024, Link::NvLink), 0.0, "{op:?}");
                assert_eq!(p.wire_bytes(op, 1, 1024), 0, "{op:?}");
            }
        }
    }

    #[test]
    fn ib_is_slower_than_nvlink() {
        let p = CostParams::a100_cluster();
        let nv = p.collective_time(CollectiveOp::AllReduce, 4, 1 << 20, Link::NvLink);
        let ib = p.collective_time(CollectiveOp::AllReduce, 4, 1 << 20, Link::InfiniBand);
        assert!(ib > nv);
    }

    #[test]
    fn broadcast_latency_scales_logarithmically_but_bandwidth_does_not() {
        let p = CostParams::a100_cluster();
        // Tiny message: latency-bound, 3x the tree depth of n = 2.
        let t2 = p.collective_time(CollectiveOp::Broadcast, 2, 0, Link::NvLink);
        let t8 = p.collective_time(CollectiveOp::Broadcast, 8, 0, Link::NvLink);
        assert!((t8 / t2 - 3.0).abs() < 1e-9);
        // Huge message: pipelined, nearly independent of n.
        let b2 = p.collective_time(CollectiveOp::Broadcast, 2, 1 << 30, Link::NvLink);
        let b8 = p.collective_time(CollectiveOp::Broadcast, 8, 1 << 30, Link::NvLink);
        assert!(b8 / b2 < 1.01);
    }

    #[test]
    fn all_reduce_volume_is_twice_broadcast() {
        let p = CostParams::a100_cluster();
        assert_eq!(
            p.wire_bytes(CollectiveOp::AllReduce, 4, 100),
            2 * p.wire_bytes(CollectiveOp::Broadcast, 4, 100)
        );
    }

    #[test]
    fn free_comm_zeroes_communication() {
        let p = CostParams::a100_cluster().free_comm();
        for op in CollectiveOp::ALL {
            assert_eq!(p.collective_time(op, 8, 1 << 20, Link::InfiniBand), 0.0, "{op:?}");
        }
    }

    fn placement(members: usize, nodes: usize, max_per_node: usize) -> GroupPlacement {
        GroupPlacement { members, nodes, max_per_node }
    }

    #[test]
    fn phased_intra_node_group_equals_flat_nvlink() {
        let p = CostParams::a100_cluster();
        for op in CollectiveOp::ALL {
            for bytes in [0usize, 1024, 1 << 22] {
                let c = p.phased_collective_time(op, bytes, placement(4, 1, 4));
                let flat_nv = p.collective_time(op, 4, bytes, Link::NvLink);
                assert_eq!(c.total, flat_nv, "{op:?} {bytes}");
                assert_eq!(c.flat, flat_nv, "{op:?} {bytes}");
                assert!(!c.hierarchical_won(), "{op:?} {bytes}");
            }
        }
    }

    #[test]
    fn phased_singleton_group_is_free() {
        let p = CostParams::a100_cluster();
        let c = p.phased_collective_time(CollectiveOp::Broadcast, 1 << 20, placement(1, 1, 1));
        assert_eq!(c.total, 0.0);
    }

    #[test]
    fn phased_is_sandwiched_between_nvlink_and_flat_ib() {
        let p = CostParams::a100_cluster();
        for op in CollectiveOp::ALL {
            for (n, nodes, m) in [(8, 2, 4), (16, 4, 4), (4, 2, 3), (5, 5, 1), (64, 16, 4)] {
                for bytes in [0usize, 1 << 10, 1 << 22, 1 << 26] {
                    let c = p.phased_collective_time(op, bytes, placement(n, nodes, m));
                    let nv = p.collective_time(op, n, bytes, Link::NvLink);
                    let ib = p.collective_time(op, n, bytes, Link::InfiniBand);
                    assert!(c.total >= nv, "{op:?} n={n} nodes={nodes} m={m} bytes={bytes}");
                    assert!(c.total <= ib, "{op:?} n={n} nodes={nodes} m={m} bytes={bytes}");
                }
            }
        }
    }

    #[test]
    fn phased_wins_at_small_sizes_when_members_share_nodes() {
        let p = CostParams::a100_cluster();
        // 8 ranks over 2 full Meluxina nodes: the IB fabric sees 2
        // participants instead of 8, so latency-bound collectives are
        // strictly cheaper under the two-level schedule.
        for op in [
            CollectiveOp::Broadcast,
            CollectiveOp::Reduce,
            CollectiveOp::AllReduce,
            CollectiveOp::AllGather,
        ] {
            let c = p.phased_collective_time(op, 1024, placement(8, 2, 4));
            assert!(c.hierarchical_won(), "{op:?}: {c:?}");
        }
    }

    #[test]
    fn phased_broadcast_crosses_over_to_flat_at_large_sizes() {
        let p = CostParams::a100_cluster();
        // Two-level broadcast pays the payload over NVLink *and* IB; the
        // pipelined flat tree pays it once over IB. The latency saving
        // (2 IB hops) buys the extra NVLink pass only below
        // β_nv · 2(α_ib − α_nv) = 3.2 MB.
        let small = p.phased_collective_time(CollectiveOp::Broadcast, 1 << 20, placement(8, 2, 4));
        assert!(small.hierarchical_won());
        let big = p.phased_collective_time(CollectiveOp::Broadcast, 1 << 23, placement(8, 2, 4));
        assert!(!big.hierarchical_won());
        assert_eq!(big.total, big.flat);
    }

    #[test]
    fn phased_spread_placement_without_sharing_matches_flat() {
        let p = CostParams::a100_cluster();
        // One member per node: the "intra phase" is a singleton (free) and
        // the inter phase is the flat algorithm over all members.
        for op in [CollectiveOp::Broadcast, CollectiveOp::AllReduce, CollectiveOp::AllGather] {
            let c = p.phased_collective_time(op, 4096, placement(4, 4, 1));
            assert_eq!(c.total, c.flat, "{op:?}");
        }
    }

    #[test]
    fn phased_point_to_point_ops_are_flat() {
        let p = CostParams::a100_cluster();
        for op in [CollectiveOp::Shift, CollectiveOp::SendRecv] {
            let c = p.phased_collective_time(op, 4096, placement(8, 2, 4));
            assert_eq!(c.total, c.flat, "{op:?}");
            assert_eq!(c.intra, 0.0, "{op:?}");
        }
    }

    #[test]
    fn phased_free_comm_is_free() {
        let p = CostParams::a100_cluster().free_comm();
        for op in CollectiveOp::ALL {
            let c = p.phased_collective_time(op, 1 << 20, placement(8, 2, 4));
            assert_eq!(c.total, 0.0, "{op:?}");
        }
    }

    #[test]
    fn larger_payload_costs_more() {
        let p = CostParams::a100_cluster();
        let small = p.collective_time(CollectiveOp::AllGather, 4, 1024, Link::InfiniBand);
        let big = p.collective_time(CollectiveOp::AllGather, 4, 1 << 22, Link::InfiniBand);
        assert!(big > small);
    }
}
