//! The α–β (Hockney) cost model that substitutes for the paper's A100
//! cluster.
//!
//! Every simulated quantity is derived from the constants in [`CostParams`]:
//! compute time is `flops / flops_rate + kernels · kernel_overhead`, and
//! each collective charges latency (α) per software step plus bytes / β on
//! the slowest link its group spans. The Table 1 / Table 2 reproductions
//! report these virtual seconds; the constants are calibrated to A100-class
//! hardware so *relative* results (who wins, by what factor) carry over.

use crate::topology::Link;

/// Collective operations the fabric implements. Used for statistics keys and
/// cost formulas.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectiveOp {
    Broadcast,
    Reduce,
    AllReduce,
    AllGather,
    Gather,
    Scatter,
    Shift,
    Barrier,
    SendRecv,
}

impl CollectiveOp {
    pub const ALL: [CollectiveOp; 9] = [
        CollectiveOp::Broadcast,
        CollectiveOp::Reduce,
        CollectiveOp::AllReduce,
        CollectiveOp::AllGather,
        CollectiveOp::Gather,
        CollectiveOp::Scatter,
        CollectiveOp::Shift,
        CollectiveOp::Barrier,
        CollectiveOp::SendRecv,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            CollectiveOp::Broadcast => "broadcast",
            CollectiveOp::Reduce => "reduce",
            CollectiveOp::AllReduce => "all_reduce",
            CollectiveOp::AllGather => "all_gather",
            CollectiveOp::Gather => "gather",
            CollectiveOp::Scatter => "scatter",
            CollectiveOp::Shift => "shift",
            CollectiveOp::Barrier => "barrier",
            CollectiveOp::SendRecv => "send_recv",
        }
    }
}

/// Calibration constants of the simulated testbed.
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Effective per-GPU compute throughput in flop/s. 200 TFLOP/s models an
    /// A100 running fp16/bf16 tensor-core GEMMs (312 TFLOP/s peak) at the
    /// ~65% efficiency large Transformer GEMMs reach in practice.
    pub flops_rate: f64,
    /// Fixed kernel-launch overhead per flop-bearing tensor op, seconds.
    /// Calibrated low (2 µs) because the simulator's op granularity is
    /// finer than a fused production kernel schedule.
    pub kernel_overhead: f64,
    /// NVLink bandwidth, bytes/s (paper: 200 GB/s).
    pub nvlink_bandwidth: f64,
    /// NVLink per-message latency, seconds.
    pub nvlink_latency: f64,
    /// InfiniBand bandwidth, bytes/s (paper: 200 Gb/s = 25 GB/s).
    pub ib_bandwidth: f64,
    /// InfiniBand per-message latency, seconds.
    pub ib_latency: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        Self::a100_cluster()
    }
}

impl CostParams {
    /// Constants calibrated to the paper's testbed (§4).
    pub fn a100_cluster() -> Self {
        Self {
            flops_rate: 200e12,
            kernel_overhead: 2e-6,
            nvlink_bandwidth: 200e9,
            nvlink_latency: 4e-6,
            ib_bandwidth: 25e9,
            ib_latency: 12e-6,
        }
    }

    /// A zero-latency, infinite-bandwidth variant: isolates pure compute in
    /// ablations (communication becomes free).
    pub fn free_comm(mut self) -> Self {
        self.nvlink_latency = 0.0;
        self.ib_latency = 0.0;
        self.nvlink_bandwidth = f64::INFINITY;
        self.ib_bandwidth = f64::INFINITY;
        self
    }

    /// (α seconds, β bytes/s) of a link.
    pub fn link_params(&self, link: Link) -> (f64, f64) {
        match link {
            Link::Local => (0.0, f64::INFINITY),
            Link::NvLink => (self.nvlink_latency, self.nvlink_bandwidth),
            Link::InfiniBand => (self.ib_latency, self.ib_bandwidth),
        }
    }

    /// Simulated compute time for `flops` of math across `kernels` launches.
    pub fn compute_time(&self, flops: f64, kernels: u64) -> f64 {
        flops / self.flops_rate + kernels as f64 * self.kernel_overhead
    }

    /// Simulated duration of one collective over a group of `n` ranks whose
    /// slowest link is `link`, where each participating message carries
    /// `bytes` bytes (the payload size of one rank's contribution).
    ///
    /// Formulas are the standard *pipelined* tree/ring costs NCCL-class
    /// libraries achieve:
    /// * broadcast / reduce / scatter / gather: pipelined binomial tree,
    ///   `⌈log₂ n⌉·α + bytes/β` (latency pays the tree depth; bandwidth is
    ///   paid once because large messages are chunked and pipelined)
    /// * all-reduce: ring, `2(n−1)α + 2 (n−1)/n · bytes/β`
    /// * all-gather: ring, `(n−1)α + (n−1) · bytes/β` (each step moves one
    ///   rank's block)
    /// * shift: one concurrent point-to-point round, `α + bytes/β`
    /// * barrier: `2α⌈log₂ n⌉`
    /// * send/recv: `α + bytes/β`
    pub fn collective_time(&self, op: CollectiveOp, n: usize, bytes: usize, link: Link) -> f64 {
        let (alpha, beta) = self.link_params(link);
        if n <= 1 && !matches!(op, CollectiveOp::SendRecv) {
            return 0.0;
        }
        let b = bytes as f64;
        let nf = n as f64;
        let log_n = (n as f64).log2().ceil();
        match op {
            CollectiveOp::Broadcast
            | CollectiveOp::Reduce
            | CollectiveOp::Scatter
            | CollectiveOp::Gather => log_n * alpha + b / beta,
            CollectiveOp::AllReduce => 2.0 * (nf - 1.0) * alpha + 2.0 * (nf - 1.0) / nf * b / beta,
            CollectiveOp::AllGather => (nf - 1.0) * (alpha + b / beta),
            CollectiveOp::Shift | CollectiveOp::SendRecv => alpha + b / beta,
            CollectiveOp::Barrier => 2.0 * alpha * log_n,
        }
    }

    /// Total bytes a collective puts on the wire (for volume accounting):
    /// the standard logical volumes of the algorithms above.
    pub fn wire_bytes(&self, op: CollectiveOp, n: usize, bytes: usize) -> u64 {
        if n <= 1 && !matches!(op, CollectiveOp::SendRecv) {
            return 0;
        }
        let b = bytes as u64;
        let n64 = n as u64;
        match op {
            CollectiveOp::Broadcast | CollectiveOp::Reduce => b * (n64 - 1),
            CollectiveOp::AllReduce => 2 * b * (n64 - 1),
            CollectiveOp::AllGather | CollectiveOp::Gather | CollectiveOp::Scatter => b * (n64 - 1),
            CollectiveOp::Shift => b * n64,
            CollectiveOp::Barrier => 0,
            CollectiveOp::SendRecv => b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_combines_rate_and_overhead() {
        let p = CostParams::a100_cluster();
        let t = p.compute_time(200e12, 2);
        assert!((t - (1.0 + 2.0 * 2e-6)).abs() < 1e-9);
    }

    #[test]
    fn singleton_collectives_are_free() {
        let p = CostParams::a100_cluster();
        for op in CollectiveOp::ALL {
            if op != CollectiveOp::SendRecv {
                assert_eq!(p.collective_time(op, 1, 1024, Link::NvLink), 0.0, "{op:?}");
                assert_eq!(p.wire_bytes(op, 1, 1024), 0, "{op:?}");
            }
        }
    }

    #[test]
    fn ib_is_slower_than_nvlink() {
        let p = CostParams::a100_cluster();
        let nv = p.collective_time(CollectiveOp::AllReduce, 4, 1 << 20, Link::NvLink);
        let ib = p.collective_time(CollectiveOp::AllReduce, 4, 1 << 20, Link::InfiniBand);
        assert!(ib > nv);
    }

    #[test]
    fn broadcast_latency_scales_logarithmically_but_bandwidth_does_not() {
        let p = CostParams::a100_cluster();
        // Tiny message: latency-bound, 3x the tree depth of n = 2.
        let t2 = p.collective_time(CollectiveOp::Broadcast, 2, 0, Link::NvLink);
        let t8 = p.collective_time(CollectiveOp::Broadcast, 8, 0, Link::NvLink);
        assert!((t8 / t2 - 3.0).abs() < 1e-9);
        // Huge message: pipelined, nearly independent of n.
        let b2 = p.collective_time(CollectiveOp::Broadcast, 2, 1 << 30, Link::NvLink);
        let b8 = p.collective_time(CollectiveOp::Broadcast, 8, 1 << 30, Link::NvLink);
        assert!(b8 / b2 < 1.01);
    }

    #[test]
    fn all_reduce_volume_is_twice_broadcast() {
        let p = CostParams::a100_cluster();
        assert_eq!(
            p.wire_bytes(CollectiveOp::AllReduce, 4, 100),
            2 * p.wire_bytes(CollectiveOp::Broadcast, 4, 100)
        );
    }

    #[test]
    fn free_comm_zeroes_communication() {
        let p = CostParams::a100_cluster().free_comm();
        for op in CollectiveOp::ALL {
            assert_eq!(p.collective_time(op, 8, 1 << 20, Link::InfiniBand), 0.0, "{op:?}");
        }
    }

    #[test]
    fn larger_payload_costs_more() {
        let p = CostParams::a100_cluster();
        let small = p.collective_time(CollectiveOp::AllGather, 4, 1024, Link::InfiniBand);
        let big = p.collective_time(CollectiveOp::AllGather, 4, 1 << 22, Link::InfiniBand);
        assert!(big > small);
    }
}
