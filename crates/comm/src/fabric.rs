//! The rendezvous fabric: the shared-memory "wire" of the simulated cluster.
//!
//! Two primitives are provided:
//!
//! * [`Fabric::exchange`] — an n-way rendezvous: every member of a group
//!   deposits an optional payload under a `(group id, sequence)` key; once
//!   all `n` members have arrived, everyone receives the full deposit vector
//!   plus the maximum entry virtual-time (collectives synchronize clocks to
//!   the slowest participant). All collectives are built on this.
//! * [`Fabric::send`] / [`Fabric::recv`] — ordered point-to-point channels
//!   keyed by `(group id, src, dst, tag)`, used by pipeline parallelism.
//!
//! Both rendezvous primitives are **split-phase** internally:
//! [`Fabric::deposit`] publishes one member's contribution without blocking
//! and [`Fabric::wait`] blocks until the full group has arrived (the
//! blocking `exchange` is literally `deposit` followed by `wait`). The
//! split-phase collectives in [`crate::group`] use the two halves directly
//! so a rank can deposit a payload, go compute, and only pay the rendezvous
//! wait when it actually needs the result.
//!
//! SPMD contract: all members of a group must invoke the same collectives
//! in the same order. A timeout (default 120 s, env-overridable)
//! converts a violated contract (or a peer that panicked) into a
//! diagnosable panic instead of a hang. The default is 120 seconds.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

static DEFAULT_TIMEOUT: OnceLock<Duration> = OnceLock::new();

/// Installs the process-default rendezvous timeout (first caller wins).
/// This is the setter [`crate::RunConfig::install`] applies after parsing
/// `TESSERACT_RENDEZVOUS_TIMEOUT_SECS`; clusters that need a different
/// timeout set it per instance instead of racing on process state.
pub fn set_default_rendezvous_timeout_secs(secs: u64) {
    let _ = DEFAULT_TIMEOUT.set(Duration::from_secs(secs));
}

/// How long a rank waits at a rendezvous before declaring the run wedged:
/// the installed default, or 120 s if nothing was installed. Cached — every
/// collective wait consults it.
fn rendezvous_timeout() -> Duration {
    DEFAULT_TIMEOUT.get().copied().unwrap_or(Duration::from_secs(120))
}

type SlotKey = (u64, u64);
type ChanKey = (u64, usize, usize, u64);

struct Slot {
    deposits: Vec<Option<Box<dyn Any + Send>>>,
    entry_vts: Vec<f64>,
    arrived: usize,
    /// `(max entry vt, downcast-ready vector)` once all members arrived.
    result: Option<(f64, Arc<dyn Any + Send + Sync>)>,
    taken: usize,
}

impl Slot {
    fn new(n: usize) -> Self {
        Self {
            deposits: (0..n).map(|_| None).collect(),
            entry_vts: Vec::with_capacity(n),
            arrived: 0,
            result: None,
            taken: 0,
        }
    }
}

#[derive(Default)]
struct FabricState {
    slots: HashMap<SlotKey, Slot>,
    channels: HashMap<ChanKey, VecDeque<(f64, Box<dyn Any + Send>)>>,
}

/// Shared rendezvous state for one cluster run.
pub struct Fabric {
    state: Mutex<FabricState>,
    cond: Condvar,
    /// Per-instance rendezvous timeout. Fixed at construction
    /// ([`Fabric::with_timeout`]) so failure-injection tests can shrink it
    /// without racing on the process environment.
    timeout: Duration,
}

/// Locks the fabric ignoring poisoning: a rank that panics mid-rendezvous
/// (e.g. on a sequencing assert) must not turn every surviving rank's next
/// lock into an opaque `PoisonError` — they should instead reach the timeout
/// path and report the wedged rendezvous diagnostically.
fn lock_fabric(m: &Mutex<FabricState>) -> MutexGuard<'_, FabricState> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new()
    }
}

impl Fabric {
    /// A fabric with the process-default timeout (120 s, or whatever
    /// [`set_default_rendezvous_timeout_secs`] installed).
    pub fn new() -> Self {
        Self::with_timeout(rendezvous_timeout())
    }

    /// A fabric whose rendezvous waits give up after `timeout`.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self { state: Mutex::new(FabricState::default()), cond: Condvar::new(), timeout }
    }

    /// Non-blocking half of [`Fabric::exchange`]: publishes this member's
    /// contribution under `key` and returns immediately. The last arriver
    /// assembles the deposit vector and wakes every waiter.
    ///
    /// Panics if a member deposits twice under one key (a sequencing bug).
    pub fn deposit<P: Send + Sync + 'static>(
        &self,
        key: SlotKey,
        my_index: usize,
        n: usize,
        payload: Option<P>,
        entry_vt: f64,
    ) {
        let mut state = lock_fabric(&self.state);
        let slot = state.slots.entry(key).or_insert_with(|| Slot::new(n));
        assert_eq!(slot.deposits.len(), n, "group size disagreement at rendezvous {key:?}");
        assert!(
            slot.deposits[my_index].is_none() && slot.result.is_none(),
            "member {my_index} deposited twice at rendezvous {key:?}"
        );
        slot.deposits[my_index] = Some(Box::new(payload));
        slot.entry_vts.push(entry_vt);
        slot.arrived += 1;
        if slot.arrived == n {
            let max_vt = slot.entry_vts.iter().copied().fold(f64::MIN, f64::max);
            let vec: Vec<Option<P>> = slot
                .deposits
                .iter_mut()
                .map(|d| {
                    *d.take()
                        .expect("all deposits present")
                        .downcast::<Option<P>>()
                        .expect("payload type mismatch within one rendezvous")
                })
                .collect();
            slot.result = Some((max_vt, Arc::new(vec)));
            self.cond.notify_all();
        }
    }

    /// Blocking half of [`Fabric::exchange`]: parks until all `n` members
    /// have deposited under `key`, then returns `(max entry vt, deposits)`
    /// where `deposits[i]` is member `i`'s payload (if it deposited one).
    ///
    /// Panics if the rendezvous does not complete within the timeout.
    pub fn wait<P: Send + Sync + 'static>(
        &self,
        key: SlotKey,
        my_index: usize,
        n: usize,
    ) -> (f64, Arc<Vec<Option<P>>>) {
        let mut state = lock_fabric(&self.state);
        loop {
            if let Some(slot) = state.slots.get_mut(&key) {
                if let Some((max_vt, result)) = slot.result.clone() {
                    slot.taken += 1;
                    if slot.taken == n {
                        state.slots.remove(&key);
                    }
                    let arc = result
                        .downcast::<Vec<Option<P>>>()
                        .expect("payload type mismatch within one rendezvous");
                    return (max_vt, arc);
                }
            }
            let (guard, timed_out) =
                self.cond.wait_timeout(state, self.timeout).unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if timed_out.timed_out() {
                panic!(
                    "rendezvous {key:?} timed out (member {my_index} of {n}); \
                     a peer likely panicked or collectives were issued out of order"
                );
            }
        }
    }

    /// N-way rendezvous: [`Fabric::deposit`] followed by [`Fabric::wait`].
    pub fn exchange<P: Send + Sync + 'static>(
        &self,
        key: SlotKey,
        my_index: usize,
        n: usize,
        payload: Option<P>,
        entry_vt: f64,
    ) -> (f64, Arc<Vec<Option<P>>>) {
        self.deposit(key, my_index, n, payload, entry_vt);
        self.wait(key, my_index, n)
    }

    /// Non-blocking half of [`Fabric::exchange_reduce`]: deposits this
    /// member's payload *by value*; the last arriver moves all `n` deposits
    /// out of the slot and folds them with `combine` **outside the fabric
    /// lock** (a large reduction must not serialize unrelated traffic), then
    /// publishes the result as a single `Arc` that every member clones out
    /// of [`Fabric::wait_reduce`]. No deposit is ever copied: the combiner
    /// consumes them, so the fold can reuse the first part's buffer in
    /// place.
    ///
    /// The slot cannot be garbage-collected mid-combine because `taken`
    /// only advances once `result` is published.
    pub fn deposit_reduce<P, F>(
        &self,
        key: SlotKey,
        my_index: usize,
        n: usize,
        payload: P,
        entry_vt: f64,
        combine: F,
    ) where
        P: Send + Sync + 'static,
        F: FnOnce(Vec<P>) -> P,
    {
        let mut state = lock_fabric(&self.state);
        let is_last = {
            let slot = state.slots.entry(key).or_insert_with(|| Slot::new(n));
            assert_eq!(slot.deposits.len(), n, "group size disagreement at rendezvous {key:?}");
            assert!(
                slot.deposits[my_index].is_none() && slot.result.is_none(),
                "member {my_index} deposited twice at rendezvous {key:?}"
            );
            slot.deposits[my_index] = Some(Box::new(payload));
            slot.entry_vts.push(entry_vt);
            slot.arrived += 1;
            slot.arrived == n
        };
        if is_last {
            let (max_vt, parts) = {
                let slot = state.slots.get_mut(&key).expect("slot present until taken by all");
                let max_vt = slot.entry_vts.iter().copied().fold(f64::MIN, f64::max);
                let parts: Vec<P> = slot
                    .deposits
                    .iter_mut()
                    .map(|d| {
                        *d.take()
                            .expect("all deposits present")
                            .downcast::<P>()
                            .expect("payload type mismatch within one rendezvous")
                    })
                    .collect();
                (max_vt, parts)
            };
            drop(state);
            let combined = combine(parts);
            state = lock_fabric(&self.state);
            let slot = state.slots.get_mut(&key).expect("slot present until taken by all");
            slot.result = Some((max_vt, Arc::new(combined)));
            self.cond.notify_all();
        }
    }

    /// Blocking half of [`Fabric::exchange_reduce`]: parks until the last
    /// arriver has published the combined value, then clones the shared
    /// `Arc` out. Panics if the rendezvous does not complete within the
    /// timeout.
    pub fn wait_reduce<P: Send + Sync + 'static>(
        &self,
        key: SlotKey,
        my_index: usize,
        n: usize,
    ) -> (f64, Arc<P>) {
        let mut state = lock_fabric(&self.state);
        loop {
            if let Some(slot) = state.slots.get_mut(&key) {
                if let Some((max_vt, result)) = slot.result.clone() {
                    slot.taken += 1;
                    if slot.taken == n {
                        state.slots.remove(&key);
                    }
                    let arc = result
                        .downcast::<P>()
                        .expect("payload type mismatch within one rendezvous");
                    return (max_vt, arc);
                }
            }
            let (guard, timed_out) =
                self.cond.wait_timeout(state, self.timeout).unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if timed_out.timed_out() {
                panic!(
                    "rendezvous {key:?} timed out (member {my_index} of {n}); \
                     a peer likely panicked or collectives were issued out of order"
                );
            }
        }
    }

    /// Reducing N-way rendezvous: [`Fabric::deposit_reduce`] followed by
    /// [`Fabric::wait_reduce`].
    pub fn exchange_reduce<P, F>(
        &self,
        key: SlotKey,
        my_index: usize,
        n: usize,
        payload: P,
        entry_vt: f64,
        combine: F,
    ) -> (f64, Arc<P>)
    where
        P: Send + Sync + 'static,
        F: FnOnce(Vec<P>) -> P,
    {
        self.deposit_reduce(key, my_index, n, payload, entry_vt, combine);
        self.wait_reduce(key, my_index, n)
    }

    /// Deposits a point-to-point message; never blocks.
    pub fn send<P: Send + 'static>(&self, chan: ChanKey, payload: P, send_vt: f64) {
        let mut state = lock_fabric(&self.state);
        state.channels.entry(chan).or_default().push_back((send_vt, Box::new(payload)));
        self.cond.notify_all();
    }

    /// Receives the oldest message on a channel, blocking until one arrives.
    /// Returns `(sender's vt at send, payload)`.
    pub fn recv<P: Send + 'static>(&self, chan: ChanKey) -> (f64, P) {
        let mut state = lock_fabric(&self.state);
        loop {
            if let Some(queue) = state.channels.get_mut(&chan) {
                if let Some((vt, payload)) = queue.pop_front() {
                    if queue.is_empty() {
                        state.channels.remove(&chan);
                    }
                    let payload = *payload.downcast::<P>().expect("p2p payload type mismatch");
                    return (vt, payload);
                }
            }
            let (guard, timed_out) =
                self.cond.wait_timeout(state, self.timeout).unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if timed_out.timed_out() {
                panic!("recv on channel {chan:?} timed out; sender likely panicked");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn exchange_gathers_all_payloads() {
        let fabric = Arc::new(Fabric::new());
        let n = 4;
        let results: Vec<(f64, Arc<Vec<Option<u32>>>)> = thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let f = Arc::clone(&fabric);
                    s.spawn(move || f.exchange((1, 0), i, n, Some(i as u32 * 10), i as f64))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (max_vt, vec) in &results {
            assert_eq!(*max_vt, 3.0);
            let vals: Vec<u32> = vec.iter().map(|v| v.unwrap()).collect();
            assert_eq!(vals, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn exchange_slot_is_reusable_after_completion() {
        let fabric = Arc::new(Fabric::new());
        for round in 0..3u64 {
            let results: Vec<_> = thread::scope(|s| {
                let handles: Vec<_> = (0..2)
                    .map(|i| {
                        let f = Arc::clone(&fabric);
                        s.spawn(move || f.exchange((7, round), i, 2, Some(round), 0.0))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(results[0].1.len(), 2);
        }
        assert!(lock_fabric(&fabric.state).slots.is_empty(), "slots must be garbage-collected");
    }

    #[test]
    fn exchange_supports_none_deposits() {
        let fabric = Arc::new(Fabric::new());
        let results: Vec<_> = thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let f = Arc::clone(&fabric);
                    s.spawn(move || {
                        let payload = if i == 1 { Some(99u8) } else { None };
                        f.exchange((2, 0), i, 3, payload, 0.0)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (_, vec) in results {
            assert_eq!(vec.as_ref(), &vec![None, Some(99), None]);
        }
    }

    #[test]
    fn exchange_reduce_combines_once_and_shares_the_result() {
        let fabric = Arc::new(Fabric::new());
        let n = 4;
        let results: Vec<(f64, Arc<Vec<u64>>)> = thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let f = Arc::clone(&fabric);
                    s.spawn(move || {
                        f.exchange_reduce((9, 0), i, n, vec![1u64 << (8 * i)], i as f64, |parts| {
                            // Fold in ascending member order, in place.
                            let mut it = parts.into_iter();
                            let mut acc = it.next().unwrap();
                            for p in it {
                                acc[0] += p[0];
                            }
                            acc
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (max_vt, v) in &results {
            assert_eq!(*max_vt, 3.0);
            assert_eq!(v[0], 0x01010101);
        }
        // Every member holds the *same* allocation, not a copy.
        assert!(Arc::ptr_eq(&results[0].1, &results[1].1));
        assert!(lock_fabric(&fabric.state).slots.is_empty(), "slots must be garbage-collected");
    }

    #[test]
    fn exchange_reduce_slot_is_reusable() {
        let fabric = Arc::new(Fabric::new());
        for round in 0..3u64 {
            let results: Vec<_> = thread::scope(|s| {
                let handles: Vec<_> = (0..2)
                    .map(|i| {
                        let f = Arc::clone(&fabric);
                        s.spawn(move || {
                            f.exchange_reduce((11, round), i, 2, i as u64 + round, 0.0, |parts| {
                                parts.into_iter().sum::<u64>()
                            })
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(*results[0].1, 1 + 2 * round);
        }
        assert!(lock_fabric(&fabric.state).slots.is_empty());
    }

    #[test]
    fn p2p_preserves_fifo_order_and_vt() {
        let fabric = Fabric::new();
        fabric.send((0, 0, 1, 0), "first", 1.5);
        fabric.send((0, 0, 1, 0), "second", 2.5);
        let (vt1, m1): (f64, &str) = fabric.recv((0, 0, 1, 0));
        let (vt2, m2): (f64, &str) = fabric.recv((0, 0, 1, 0));
        assert_eq!((vt1, m1), (1.5, "first"));
        assert_eq!((vt2, m2), (2.5, "second"));
    }

    #[test]
    fn p2p_blocks_until_send() {
        let fabric = Arc::new(Fabric::new());
        let f2 = Arc::clone(&fabric);
        let recv = thread::spawn(move || f2.recv::<u64>((0, 0, 1, 7)));
        thread::sleep(Duration::from_millis(20));
        fabric.send((0, 0, 1, 7), 42u64, 0.0);
        let (_, v) = recv.join().unwrap();
        assert_eq!(v, 42);
    }
}
