//! Per-rank execution context: the "device" each SPMD worker drives.
//!
//! A [`RankCtx`] owns the rank's virtual clock and compute meter. Tensor ops
//! charge `ctx.meter`; collectives (and [`RankCtx::flush_compute`]) fold the
//! pending meter into the clock using the cost model, so simulated time is
//! always `compute time + communication time` regardless of how fast the
//! host machine happens to be.

use std::sync::Arc;

use tesseract_tensor::{trace, Meter};

use crate::cost::CostParams;
use crate::fabric::Fabric;
use crate::group::CommGroup;
use crate::stats::StatsCollector;
use crate::topology::Topology;

/// One rank's view of the simulated cluster.
pub struct RankCtx {
    /// Global rank id, `0..world`.
    pub rank: usize,
    /// Total number of ranks in the cluster.
    pub world: usize,
    /// Cost-model constants (shared by all ranks).
    pub params: CostParams,
    /// Physical topology (shared by all ranks).
    pub topology: Topology,
    /// Compute meter tensors charge into; flushed into the clock at
    /// synchronization points.
    pub meter: Meter,
    clock: f64,
    compute_time: f64,
    comm_time: f64,
    total_flops: f64,
    total_kernels: u64,
    total_gemms_blocked: u64,
    total_gemms_serial: u64,
    total_gemms_kernel_scalar: u64,
    total_gemms_kernel_avx2: u64,
    total_bytes_allocated: u64,
    total_payload_copies: u64,
    total_payload_copy_bytes: u64,
    total_comm_wait_nanos: u64,
    total_overlap_hidden_nanos: u64,
    total_prefill_steps: u64,
    total_decode_steps: u64,
    total_kv_cache_bytes_peak: u64,
    total_activation_bytes_peak: u64,
    /// Running bytes of tape-held activations (pushes minus pops). Lives on
    /// the ctx rather than the meter because `Meter::take` resets flows at
    /// every flush, while tape residency spans flush boundaries.
    tape_bytes_now: u64,
    idle_time: f64,
    fabric: Arc<Fabric>,
    stats: Arc<StatsCollector>,
}

impl RankCtx {
    pub(crate) fn new(
        rank: usize,
        world: usize,
        params: CostParams,
        topology: Topology,
        fabric: Arc<Fabric>,
        stats: Arc<StatsCollector>,
    ) -> Self {
        Self {
            rank,
            world,
            params,
            topology,
            meter: Meter::new(),
            clock: 0.0,
            compute_time: 0.0,
            comm_time: 0.0,
            total_flops: 0.0,
            total_kernels: 0,
            total_gemms_blocked: 0,
            total_gemms_serial: 0,
            total_gemms_kernel_scalar: 0,
            total_gemms_kernel_avx2: 0,
            total_bytes_allocated: 0,
            total_payload_copies: 0,
            total_payload_copy_bytes: 0,
            total_comm_wait_nanos: 0,
            total_overlap_hidden_nanos: 0,
            total_prefill_steps: 0,
            total_decode_steps: 0,
            total_kv_cache_bytes_peak: 0,
            total_activation_bytes_peak: 0,
            tape_bytes_now: 0,
            idle_time: 0.0,
            fabric,
            stats,
        }
    }

    /// Current virtual time (seconds since run start).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    pub(crate) fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    pub(crate) fn stats(&self) -> &StatsCollector {
        &self.stats
    }

    /// Converts all pending metered compute into virtual time. Collectives
    /// call this automatically; call it manually before reading the clock.
    pub fn flush_compute(&mut self) {
        let begin = self.clock;
        let m = self.meter.take();
        self.total_bytes_allocated += m.bytes_allocated;
        // GEMM dispatch audit counters: which `planned_path` variant ran,
        // and — for blocked dispatches — which micro-kernel backend.
        self.total_gemms_blocked += m.gemms_blocked;
        self.total_gemms_serial += m.gemms_serial;
        self.total_gemms_kernel_scalar += m.gemms_kernel_scalar;
        self.total_gemms_kernel_avx2 += m.gemms_kernel_avx2;
        // Payload copies are accumulated but deliberately excluded from
        // `compute_time`: they are host memcpys outside the α–β model.
        self.total_payload_copies += m.payload_copies;
        self.total_payload_copy_bytes += m.payload_copy_bytes;
        // Wait counters are bookkeeping only; `advance_comm` already booked
        // the corresponding seconds into `comm_time`.
        self.total_comm_wait_nanos += m.comm_wait_nanos;
        self.total_overlap_hidden_nanos += m.overlap_hidden_nanos;
        // Serving counters: steps are flows (summed); the KV peak is a
        // high-water mark (max), matching `Meter::merge`.
        self.total_prefill_steps += m.prefill_steps;
        self.total_decode_steps += m.decode_steps;
        self.total_kv_cache_bytes_peak = self.total_kv_cache_bytes_peak.max(m.kv_cache_bytes_peak);
        self.total_activation_bytes_peak =
            self.total_activation_bytes_peak.max(m.activation_bytes_peak);
        if m.flops > 0.0 || m.kernels > 0 {
            let t = self.params.compute_time(m.flops, m.kernels);
            self.clock += t;
            self.compute_time += t;
            self.total_flops += m.flops;
            self.total_kernels += m.kernels;
        }
        if trace::is_active() {
            // The flush is the authoritative trace unit for compute: the
            // event carries the exact values just folded into the totals,
            // in the same accumulation order, so trace sums reconcile with
            // `RankReport` bitwise.
            trace::on_flush(m.flops, m.kernels, m.bytes_allocated, begin, self.clock);
        }
    }

    /// Advances the clock to `new_time` (a collective exit time), booking
    /// the difference as communication/wait time.
    pub(crate) fn advance_comm(&mut self, new_time: f64) {
        if new_time > self.clock {
            self.meter.charge_comm_wait(new_time - self.clock);
            self.comm_time += new_time - self.clock;
            self.clock = new_time;
        }
    }

    /// Advances the clock to `until` (virtual seconds), booking the gap as
    /// idle time — neither compute nor communication. The serving engine
    /// uses this when no request is runnable and the next event is a
    /// future arrival: the rank "sleeps" until the traffic wakes it. Any
    /// pending metered compute is flushed first so the idle window starts
    /// from an up-to-date clock. A no-op if `until` is in the past.
    pub fn idle_until(&mut self, until: f64) {
        self.flush_compute();
        if until > self.clock {
            self.idle_time += until - self.clock;
            self.clock = until;
        }
    }

    /// Total simulated seconds this rank has spent idle (via
    /// [`RankCtx::idle_until`]).
    pub fn idle_time(&self) -> f64 {
        self.idle_time
    }

    /// The virtual time the clock *will* read once pending compute is
    /// flushed, without flushing (non-mutating — scope spans use this so
    /// observing the timeline never perturbs flush batching).
    pub fn vt_now(&self) -> f64 {
        if self.meter.flops > 0.0 || self.meter.kernels > 0 {
            self.clock + self.params.compute_time(self.meter.flops, self.meter.kernels)
        } else {
            self.clock
        }
    }

    /// Lifetime blocked-wait nanos (folded totals plus the pending meter);
    /// invariant under `flush_compute`, so comm spans can delta it.
    pub(crate) fn lifetime_comm_wait_nanos(&self) -> u64 {
        self.total_comm_wait_nanos + self.meter.comm_wait_nanos
    }

    /// Lifetime hidden-overlap nanos; invariant under `flush_compute`.
    pub(crate) fn lifetime_overlap_hidden_nanos(&self) -> u64 {
        self.total_overlap_hidden_nanos + self.meter.overlap_hidden_nanos
    }

    /// Runs `f` inside a named trace scope (`what.phase`, e.g.
    /// `linear.fwd`) spanning its virtual-time window. When tracing is
    /// disabled this is exactly `f(self)` — no strings are built, no clock
    /// is touched.
    pub fn traced<R>(
        &mut self,
        what: &str,
        phase: &'static str,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        if !trace::is_active() {
            return f(self);
        }
        let begin = self.vt_now();
        let result = f(self);
        let end = self.vt_now();
        trace::record(
            format!("{what}.{phase}"),
            begin,
            end,
            tesseract_tensor::TraceKind::Scope { phase },
        );
        result
    }

    /// Creates a communication group containing this rank. See
    /// [`CommGroup::new`] for the SPMD contract.
    pub fn group(&self, tag: &str, ranks: Vec<usize>) -> CommGroup {
        CommGroup::new(self, tag, ranks)
    }

    /// Group over all ranks in the cluster.
    pub fn world_group(&self) -> CommGroup {
        self.group("world", (0..self.world).collect())
    }

    /// Final accounting snapshot for this rank.
    pub fn report(&mut self) -> RankReport {
        self.flush_compute();
        RankReport {
            rank: self.rank,
            virtual_time: self.clock,
            compute_time: self.compute_time,
            comm_time: self.comm_time,
            flops: self.total_flops,
            kernels: self.total_kernels,
            gemms_blocked: self.total_gemms_blocked,
            gemms_serial: self.total_gemms_serial,
            gemms_kernel_scalar: self.total_gemms_kernel_scalar,
            gemms_kernel_avx2: self.total_gemms_kernel_avx2,
            bytes_allocated: self.total_bytes_allocated,
            payload_copies: self.total_payload_copies,
            payload_copy_bytes: self.total_payload_copy_bytes,
            comm_wait_nanos: self.total_comm_wait_nanos,
            overlap_hidden_nanos: self.total_overlap_hidden_nanos,
            prefill_steps: self.total_prefill_steps,
            decode_steps: self.total_decode_steps,
            kv_cache_bytes_peak: self.total_kv_cache_bytes_peak,
            activation_bytes_peak: self.total_activation_bytes_peak,
            idle_time: self.idle_time,
        }
    }

    /// Books `bytes` of newly tape-held activation data and raises the
    /// meter's high-water mark to the new running total. Called by
    /// `Tape::push_tracked` in tesseract-core.
    pub fn charge_tape_push(&mut self, bytes: u64) {
        self.tape_bytes_now += bytes;
        self.meter.note_activation_bytes(self.tape_bytes_now);
    }

    /// Releases `bytes` of tape-held activation data (pop or checkpoint
    /// clear). Saturating: a release can never underflow the running total.
    pub fn charge_tape_pop(&mut self, bytes: u64) {
        debug_assert!(self.tape_bytes_now >= bytes, "tape release exceeds held bytes");
        self.tape_bytes_now = self.tape_bytes_now.saturating_sub(bytes);
    }

    /// Current bytes of tape-held activations (pushes minus pops).
    pub fn tape_bytes_now(&self) -> u64 {
        self.tape_bytes_now
    }
}

/// Per-rank timing/throughput summary returned from a cluster run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankReport {
    pub rank: usize,
    /// Total simulated seconds (compute + communication + wait).
    pub virtual_time: f64,
    /// Simulated seconds spent in metered compute.
    pub compute_time: f64,
    /// Simulated seconds spent in collectives (including skew wait).
    pub comm_time: f64,
    /// Total flops this rank performed.
    pub flops: f64,
    /// Total kernel launches this rank performed.
    pub kernels: u64,
    /// GEMM launches `matmul::planned_path` dispatched to the blocked
    /// kernel on this rank.
    pub gemms_blocked: u64,
    /// GEMM launches that fell back to the serial triple loop.
    pub gemms_serial: u64,
    /// Blocked dispatches that ran the scalar micro-kernel backend
    /// (`gemms_kernel_scalar + gemms_kernel_avx2 == gemms_blocked`).
    pub gemms_kernel_scalar: u64,
    /// Blocked dispatches that ran the AVX2+FMA micro-kernel backend —
    /// the audit trail for which kernel actually executed this run.
    pub gemms_kernel_avx2: u64,
    /// Total bytes of op outputs this rank materialized (an
    /// activation-traffic proxy; weights are counted once at construction
    /// via the concat in layer constructors).
    pub bytes_allocated: u64,
    /// Host-side deep copies of collective payloads this rank performed
    /// (zero on the shared, read-only collective path).
    pub payload_copies: u64,
    /// Bytes duplicated by those copies.
    pub payload_copy_bytes: u64,
    /// Simulated nanoseconds this rank spent blocked in collectives (the
    /// integer-nanosecond mirror of `comm_time`, at counter resolution).
    pub comm_wait_nanos: u64,
    /// Simulated nanoseconds of collective wait hidden under compute by
    /// split-phase overlap (zero on the serial path).
    pub overlap_hidden_nanos: u64,
    /// Serving prefill steps this rank participated in (zero for training
    /// runs).
    pub prefill_steps: u64,
    /// Serving decode steps this rank participated in (zero for training
    /// runs).
    pub decode_steps: u64,
    /// Peak bytes of KV-cache blocks resident on this rank at any point in
    /// the run (a high-water mark, not a flow).
    pub kv_cache_bytes_peak: u64,
    /// Peak bytes of tape-held activations resident on this rank at any
    /// point in the run (a high-water mark, not a flow; zero for serving
    /// runs). This is the measured number the memory table's
    /// measured-peak column and `plan`'s dry-run report — what sequence
    /// parallelism and checkpointed recomputation shrink.
    pub activation_bytes_peak: u64,
    /// Simulated seconds spent idle waiting for future arrivals (via
    /// `RankCtx::idle_until`; zero for training runs). Idle time is part
    /// of `virtual_time` but belongs to neither compute nor comm.
    pub idle_time: f64,
}
