//! The unified run configuration.
//!
//! Everything that used to be scattered across `Cluster::custom`,
//! `Cluster::with_trace`, `Cluster::with_rendezvous_timeout_secs` and the
//! `TESSERACT_THREADS` / `TESSERACT_KERNEL` / `TESSERACT_TRACE` /
//! `TESSERACT_RENDEZVOUS_TIMEOUT_SECS` environment knobs lives in one
//! builder: construct a [`RunConfig`], override what you need, and call
//! [`RunConfig::cluster`]. New execution options (sequence parallelism,
//! tape recomputation) are fields here instead of yet another constructor.
//!
//! This module is the **only** place in the workspace that reads
//! `TESSERACT_*` environment variables (`scripts/ci.sh` greps for strays).
//! [`RunConfig::from_env`] parses them once into explicit fields;
//! [`RunConfig::install`] pushes the process-global ones (thread-pool size,
//! GEMM micro-kernel, trace default, rendezvous timeout default) into the
//! crates that consume them through plain setters. Each of those knobs is
//! resolved once per process — the first installer wins, exactly like the
//! old lazily-cached env reads.

use std::sync::atomic::{AtomicBool, Ordering};

use tesseract_tensor::matmul::{self, MicroKernel};
use tesseract_tensor::{pool, trace};

use crate::cluster::Cluster;
use crate::cost::CostParams;
use crate::fabric;
use crate::topology::Topology;

/// One-stop configuration for a simulated run: cluster shape and cost
/// model, per-run toggles (tracing, rendezvous timeout), process-global
/// knobs (threads, kernel) and execution options (sequence parallelism,
/// recomputation) that model stacks read off the config.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Number of ranks the cluster spawns.
    pub world: usize,
    /// Link topology collectives are phased over.
    pub topology: Topology,
    /// α–β cost constants.
    pub params: CostParams,
    /// Collect per-rank [`tesseract_tensor::TraceEvent`] timelines.
    pub trace: bool,
    /// Thread-pool size override for the dense kernels (process-global,
    /// first installer wins). `None` uses the machine's parallelism.
    pub threads: Option<usize>,
    /// Forced GEMM micro-kernel backend (process-global, first installer
    /// wins). `None` auto-detects the widest supported backend.
    pub kernel: Option<MicroKernel>,
    /// Rendezvous timeout for this cluster's fabric, in seconds. `None`
    /// uses the process default (120 s unless an installer changed it).
    pub rendezvous_timeout_secs: Option<u64>,
    /// Shard layer-norm/residual activations along the sequence dimension
    /// (consumed by model stacks via their `StackOptions`).
    pub sequence_parallel: bool,
    /// Checkpoint every `k` layers and recompute inside backward
    /// (consumed by model stacks via their `StackOptions`).
    pub recompute_every: Option<usize>,
}

impl RunConfig {
    /// A `world`-rank run on the paper's testbed topology and cost
    /// constants, with every knob at its default.
    pub fn new(world: usize) -> Self {
        Self {
            world,
            topology: Topology::meluxina(),
            params: CostParams::a100_cluster(),
            trace: false,
            threads: None,
            kernel: None,
            rendezvous_timeout_secs: None,
            sequence_parallel: false,
            recompute_every: None,
        }
    }

    /// [`RunConfig::new`] with the `TESSERACT_*` environment knobs parsed
    /// into their fields. This is the single environment-read site of the
    /// workspace; the semantics of each variable are unchanged:
    ///
    /// * `TESSERACT_TRACE` — anything other than unset/empty/`0`/`false`/
    ///   `off` enables tracing.
    /// * `TESSERACT_THREADS` — positive integer; an invalid value warns
    ///   once on stderr and is ignored.
    /// * `TESSERACT_KERNEL` — `scalar` | `avx2` | `auto`; an unknown value
    ///   panics, and forcing `avx2` on an unsupported host panics at
    ///   [`RunConfig::install`] time (a forced path must never silently
    ///   degrade).
    /// * `TESSERACT_RENDEZVOUS_TIMEOUT_SECS` — non-negative integer; a
    ///   set-but-unparsable value panics instead of silently hanging for
    ///   the two-minute default.
    pub fn from_env(world: usize) -> Self {
        let mut cfg = Self::new(world);
        if let Ok(v) = std::env::var("TESSERACT_TRACE") {
            cfg.trace = !(v.is_empty()
                || v == "0"
                || v.eq_ignore_ascii_case("false")
                || v.eq_ignore_ascii_case("off"));
        }
        if let Ok(v) = std::env::var("TESSERACT_THREADS") {
            cfg.threads = parse_threads(&v);
        }
        if let Ok(v) = std::env::var("TESSERACT_KERNEL") {
            cfg.kernel = parse_kernel(&v);
        }
        if let Ok(v) = std::env::var("TESSERACT_RENDEZVOUS_TIMEOUT_SECS") {
            let secs = v.parse().unwrap_or_else(|_| {
                panic!(
                    "TESSERACT_RENDEZVOUS_TIMEOUT_SECS must be a non-negative \
                     integer number of seconds, got {v:?}"
                )
            });
            cfg.rendezvous_timeout_secs = Some(secs);
        }
        cfg
    }

    /// Overrides the link topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Overrides the α–β cost constants.
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// Enables (or disables) per-rank event tracing.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Sizes the process-wide kernel thread pool (first installer wins).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Forces the GEMM micro-kernel backend (first installer wins).
    pub fn with_kernel(mut self, kernel: MicroKernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Sets an explicit rendezvous timeout for this cluster's fabric. Used
    /// by failure-injection tests so a deliberate deadlock fails fast
    /// without mutating process-global state.
    pub fn with_rendezvous_timeout_secs(mut self, secs: u64) -> Self {
        self.rendezvous_timeout_secs = Some(secs);
        self
    }

    /// Shards layer-norm/residual activations along the sequence dimension.
    pub fn with_sequence_parallel(mut self, on: bool) -> Self {
        self.sequence_parallel = on;
        self
    }

    /// Checkpoints every `k` layers, recomputing inside backward.
    pub fn with_recompute_every(mut self, k: Option<usize>) -> Self {
        self.recompute_every = k;
        self
    }

    /// Applies the process-global knobs (thread-pool size, forced kernel,
    /// trace default, rendezvous-timeout default). Idempotent; for each
    /// knob the first install wins, matching the old once-per-process env
    /// caching. [`RunConfig::cluster`] calls this, so explicit calls are
    /// only needed by code that runs kernels without a cluster (e.g. the
    /// single-process GEMM benches).
    pub fn install(&self) {
        if let Some(n) = self.threads {
            pool::set_configured_threads(n);
        }
        if let Some(k) = self.kernel {
            matmul::force_kernel(k);
        }
        trace::set_default_enabled(self.trace);
        if let Some(secs) = self.rendezvous_timeout_secs {
            fabric::set_default_rendezvous_timeout_secs(secs);
        }
    }

    /// Installs the process-global knobs and builds the [`Cluster`] this
    /// configuration describes.
    pub fn cluster(&self) -> Cluster {
        self.install();
        Cluster {
            world: self.world,
            topology: self.topology,
            params: self.params,
            trace: self.trace,
            rendezvous_timeout_secs: self.rendezvous_timeout_secs,
        }
    }
}

/// Parses `TESSERACT_THREADS`: positive integer, or a once-per-process
/// stderr warning and `None` (the old env reader's exact behavior).
fn parse_threads(v: &str) -> Option<usize> {
    static WARNED: AtomicBool = AtomicBool::new(false);
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            if !WARNED.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "tesseract: ignoring invalid TESSERACT_THREADS={v:?} (want a positive integer)"
                );
            }
            None
        }
    }
}

/// Parses `TESSERACT_KERNEL` (`scalar` | `avx2` | `auto`/empty); an
/// unknown value panics with the pinned message.
fn parse_kernel(v: &str) -> Option<MicroKernel> {
    match v.trim().to_ascii_lowercase().as_str() {
        "scalar" => Some(MicroKernel::Scalar),
        "avx2" => Some(MicroKernel::Avx2),
        "" | "auto" => None,
        other => panic!("invalid TESSERACT_KERNEL={other:?} (want scalar|avx2|auto)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_a100_cluster() {
        let cfg = RunConfig::new(8);
        let cluster = cfg.cluster();
        assert_eq!(cluster.world, 8);
        assert!(!cluster.trace);
        assert_eq!(cluster.rendezvous_timeout_secs, None);
        assert!(!cfg.sequence_parallel);
        assert_eq!(cfg.recompute_every, None);
    }

    #[test]
    fn builder_fields_flow_into_the_cluster() {
        let cluster = RunConfig::new(4).with_trace(true).with_rendezvous_timeout_secs(7).cluster();
        assert!(cluster.trace);
        assert_eq!(cluster.rendezvous_timeout_secs, Some(7));
    }

    #[test]
    fn thread_parse_rejects_garbage() {
        assert_eq!(parse_threads("3"), Some(3));
        assert_eq!(parse_threads(" 2 "), Some(2));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("lots"), None);
    }

    #[test]
    fn kernel_parse_matches_the_pinned_grammar() {
        assert_eq!(parse_kernel("scalar"), Some(MicroKernel::Scalar));
        assert_eq!(parse_kernel("AVX2"), Some(MicroKernel::Avx2));
        assert_eq!(parse_kernel("auto"), None);
        assert_eq!(parse_kernel(""), None);
    }

    #[test]
    #[should_panic(expected = "invalid TESSERACT_KERNEL=\"sse9\" (want scalar|avx2|auto)")]
    fn kernel_parse_panics_on_unknown_backends() {
        let _ = parse_kernel("sse9");
    }
}
