//! Aggregated communication statistics for a cluster run.
//!
//! The experiment harness uses these to report exact message counts and
//! wire volumes per scheme (the paper's §3.1 transmission-count claims) and
//! the per-rank communication time that feeds the Table 1/2 rows.

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

use crate::cost::CollectiveOp;

/// Totals for one collective op type.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpStats {
    /// Number of collective invocations (one per group call, not per rank).
    pub calls: u64,
    /// Total logical bytes moved on the wire across all calls.
    pub wire_bytes: u64,
    /// Total simulated seconds spent (per call, not multiplied by ranks).
    pub time: f64,
    /// Host-side deep copies of payloads made on behalf of this op, summed
    /// over *all* ranks (unlike `calls`/`wire_bytes`, which count each
    /// logical operation once): every receiver-side clone is a real memcpy
    /// and each one is recorded where it happens.
    pub copies: u64,
    /// Bytes duplicated by those copies.
    pub copy_bytes: u64,
    /// Simulated seconds of this op's wait that split-phase overlap hid
    /// under compute, summed over *all* ranks (each rank hides a different
    /// amount depending on how much compute it had in flight). Zero on the
    /// blocking path. Informational: `time` still records the full op cost.
    pub hidden_time: f64,
}

/// Shared, thread-safe statistics collector for one cluster run.
#[derive(Debug, Default)]
pub struct StatsCollector {
    inner: Mutex<HashMap<CollectiveOp, OpStats>>,
}

impl StatsCollector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed collective. Called exactly once per collective
    /// (by the last-arriving rank), so counts are per logical operation.
    pub fn record(&self, op: CollectiveOp, wire_bytes: u64, time: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = inner.entry(op).or_default();
        entry.calls += 1;
        entry.wire_bytes += wire_bytes;
        entry.time += time;
    }

    /// Charges one host-side payload copy of `bytes` bytes made on behalf
    /// of `op`. Called by every rank that clones (root deposits, receiver
    /// materializations in the owned compatibility wrappers), so the totals
    /// measure real memcpy traffic across the whole cluster.
    pub fn charge_copy(&self, op: CollectiveOp, bytes: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = inner.entry(op).or_default();
        entry.copies += 1;
        entry.copy_bytes += bytes;
    }

    /// Charges `seconds` of `op` wait hidden under compute by one rank's
    /// split-phase `begin`/`complete` pair. Like `charge_copy`, called by
    /// every rank that hides wait, so totals are cluster-wide.
    pub fn charge_hidden(&self, op: CollectiveOp, seconds: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.entry(op).or_default().hidden_time += seconds;
    }

    /// Snapshot of all op totals.
    pub fn snapshot(&self) -> CommStats {
        CommStats { per_op: self.inner.lock().unwrap_or_else(PoisonError::into_inner).clone() }
    }
}

/// Immutable snapshot of the collector, returned from a cluster run.
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    pub per_op: HashMap<CollectiveOp, OpStats>,
}

impl CommStats {
    pub fn get(&self, op: CollectiveOp) -> OpStats {
        self.per_op.get(&op).copied().unwrap_or_default()
    }

    /// Total wire bytes across all collective types.
    pub fn total_wire_bytes(&self) -> u64 {
        self.per_op.values().map(|s| s.wire_bytes).sum()
    }

    /// Total collective invocations across all types.
    pub fn total_calls(&self) -> u64 {
        self.per_op.values().map(|s| s.calls).sum()
    }

    /// Total host-side payload copies across all collective types.
    pub fn total_copies(&self) -> u64 {
        self.per_op.values().map(|s| s.copies).sum()
    }

    /// Total bytes duplicated by host-side payload copies.
    pub fn total_copy_bytes(&self) -> u64 {
        self.per_op.values().map(|s| s.copy_bytes).sum()
    }

    /// Total simulated seconds of collective wait hidden under compute by
    /// split-phase overlap, summed over all ops and all ranks.
    pub fn total_hidden_time(&self) -> f64 {
        self.per_op.values().map(|s| s.hidden_time).sum()
    }

    /// Renders a small human-readable table (used by examples and bins).
    pub fn render_table(&self) -> String {
        let mut out = String::from(
            "collective    calls      wire bytes        sim time (s)  copies      copy bytes      hidden (s)\n",
        );
        let mut ops: Vec<_> = self.per_op.iter().collect();
        ops.sort_by_key(|(op, _)| op.name());
        for (op, s) in ops {
            out.push_str(&format!(
                "{:<12} {:>6} {:>15} {:>19.6} {:>7} {:>15} {:>15.6}\n",
                op.name(),
                s.calls,
                s.wire_bytes,
                s.time,
                s.copies,
                s.copy_bytes,
                s.hidden_time
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let c = StatsCollector::new();
        c.record(CollectiveOp::AllReduce, 100, 0.5);
        c.record(CollectiveOp::AllReduce, 50, 0.25);
        c.record(CollectiveOp::Broadcast, 10, 0.1);
        let s = c.snapshot();
        assert_eq!(s.get(CollectiveOp::AllReduce).calls, 2);
        assert_eq!(s.get(CollectiveOp::AllReduce).wire_bytes, 150);
        assert_eq!(s.total_wire_bytes(), 160);
        assert_eq!(s.total_calls(), 3);
    }

    #[test]
    fn missing_op_reads_zero() {
        let s = StatsCollector::new().snapshot();
        assert_eq!(s.get(CollectiveOp::Shift), OpStats::default());
    }

    #[test]
    fn copies_are_tracked_separately_from_wire_traffic() {
        let c = StatsCollector::new();
        c.record(CollectiveOp::Broadcast, 100, 0.5);
        c.charge_copy(CollectiveOp::Broadcast, 64);
        c.charge_copy(CollectiveOp::Broadcast, 64);
        c.charge_copy(CollectiveOp::AllGather, 32);
        let s = c.snapshot();
        assert_eq!(s.get(CollectiveOp::Broadcast).copies, 2);
        assert_eq!(s.get(CollectiveOp::Broadcast).copy_bytes, 128);
        // Copies never inflate the logical wire/call accounting.
        assert_eq!(s.get(CollectiveOp::Broadcast).wire_bytes, 100);
        assert_eq!(s.get(CollectiveOp::AllGather).calls, 0);
        assert_eq!(s.total_copies(), 3);
        assert_eq!(s.total_copy_bytes(), 160);
    }

    #[test]
    fn hidden_time_accumulates_per_op() {
        let c = StatsCollector::new();
        c.record(CollectiveOp::Broadcast, 100, 0.5);
        c.charge_hidden(CollectiveOp::Broadcast, 0.125);
        c.charge_hidden(CollectiveOp::Broadcast, 0.25);
        c.charge_hidden(CollectiveOp::AllReduce, 0.5);
        let s = c.snapshot();
        assert_eq!(s.get(CollectiveOp::Broadcast).hidden_time, 0.375);
        // Hidden time never inflates the logical call/time accounting.
        assert_eq!(s.get(CollectiveOp::Broadcast).calls, 1);
        assert_eq!(s.get(CollectiveOp::Broadcast).time, 0.5);
        assert_eq!(s.get(CollectiveOp::AllReduce).calls, 0);
        assert_eq!(s.total_hidden_time(), 0.875);
    }

    #[test]
    fn render_table_contains_ops() {
        let c = StatsCollector::new();
        c.record(CollectiveOp::Gather, 7, 0.0);
        let table = c.snapshot().render_table();
        assert!(table.contains("gather"));
        assert!(table.contains('7'));
    }
}
