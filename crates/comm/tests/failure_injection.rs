//! Failure-injection tests: the simulated cluster must convert misuse into
//! diagnosable panics rather than silent corruption or hangs.

use tesseract_comm::{Cluster, RunConfig};
use tesseract_tensor::{DenseTensor, Matrix, TensorLike};

/// A cluster whose fabric gives up in seconds instead of minutes, so
/// ranks that survive an injected failure fail fast. Set per cluster via
/// the builder — mutating the process environment from parallel tests is
/// a race.
fn fail_fast(world: usize) -> Cluster {
    RunConfig::new(world).with_rendezvous_timeout_secs(2).cluster()
}

#[test]
#[should_panic(expected = "rank 1 panicked")]
fn rank_panics_are_propagated_with_rank_id() {
    fail_fast(2).run(|ctx| {
        if ctx.rank == 1 {
            panic!("deliberate failure");
        }
        // Rank 0 does local work only, so it finishes without deadlocking.
        let t = DenseTensor::from_matrix(Matrix::full(2, 2, 1.0));
        let _ = t.matmul(&t, &mut ctx.meter);
    });
}

#[test]
#[should_panic(expected = "not a member")]
fn joining_a_group_you_are_not_in_panics() {
    fail_fast(2).run(|ctx| {
        // Both ranks construct a group containing only rank 0.
        let _ = ctx.group("bad", vec![0]);
    });
}

#[test]
#[should_panic(expected = "exactly the root must supply the payload")]
fn broadcast_without_root_payload_panics() {
    fail_fast(2).run(|ctx| {
        let g = ctx.world_group();
        // Nobody provides the payload.
        let _: DenseTensor = g.broadcast(ctx, 0, None);
    });
}

#[test]
#[should_panic(expected = "scatter: need one part per member")]
fn scatter_with_wrong_part_count_panics() {
    fail_fast(2).run(|ctx| {
        let g = ctx.world_group();
        let parts = (ctx.rank == 0).then(|| vec![DenseTensor::from_matrix(Matrix::zeros(1, 1))]);
        // Only one part for two members.
        let _ = g.scatter(ctx, 0, parts);
    });
}

#[test]
#[should_panic(expected = "send: bad destination")]
fn send_to_self_panics() {
    fail_fast(2).run(|ctx| {
        let g = ctx.world_group();
        g.send(ctx, g.my_index(), 0, DenseTensor::from_matrix(Matrix::zeros(1, 1)));
    });
}

#[test]
#[should_panic(expected = "cluster needs at least one rank")]
fn zero_rank_cluster_is_rejected() {
    let _ = Cluster::a100(0).run(|_ctx| ());
}

#[test]
fn reduce_payload_shape_mismatch_panics() {
    // Shape disagreement between ranks inside a reduction is a bug; the
    // deterministic combiner must catch it.
    let result = std::panic::catch_unwind(|| {
        fail_fast(2).run(|ctx| {
            let g = ctx.world_group();
            let t = if ctx.rank == 0 {
                DenseTensor::from_matrix(Matrix::zeros(2, 2))
            } else {
                DenseTensor::from_matrix(Matrix::zeros(3, 3))
            };
            let _ = g.all_reduce(ctx, t);
        });
    });
    assert!(result.is_err(), "mismatched reduce shapes must panic");
}
