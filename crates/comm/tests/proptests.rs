//! Property-based tests for the communication substrate: cost-model
//! invariants and collective semantics on randomized inputs.

// Gated behind the `proptest-tests` feature: run with
//     cargo test -p <crate> --features proptest-tests
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use tesseract_comm::{Cluster, CollectiveOp, CostParams, Link, Topology};
use tesseract_tensor::{DenseTensor, Matrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn collective_time_is_nonnegative_and_monotone_in_bytes(
        n in 1usize..64,
        bytes in 0usize..(1 << 24),
        more in 1usize..(1 << 20),
    ) {
        let p = CostParams::a100_cluster();
        for op in CollectiveOp::ALL {
            for link in [Link::NvLink, Link::InfiniBand] {
                let t1 = p.collective_time(op, n, bytes, link);
                let t2 = p.collective_time(op, n, bytes + more, link);
                prop_assert!(t1 >= 0.0, "{op:?}");
                prop_assert!(t2 >= t1, "{op:?} must be monotone in bytes");
            }
        }
    }

    #[test]
    fn ib_never_beats_nvlink(n in 2usize..64, bytes in 1usize..(1 << 24)) {
        let p = CostParams::a100_cluster();
        for op in CollectiveOp::ALL {
            let nv = p.collective_time(op, n, bytes, Link::NvLink);
            let ib = p.collective_time(op, n, bytes, Link::InfiniBand);
            prop_assert!(ib >= nv, "{op:?}");
        }
    }

    #[test]
    fn wire_bytes_scale_linearly(n in 2usize..32, bytes in 1usize..(1 << 16)) {
        let p = CostParams::a100_cluster();
        for op in CollectiveOp::ALL {
            let w1 = p.wire_bytes(op, n, bytes);
            let w2 = p.wire_bytes(op, n, 2 * bytes);
            prop_assert_eq!(w2, 2 * w1, "{:?}", op);
        }
    }

    #[test]
    fn node_packing_is_consistent(gpus_per_node in 1usize..16, rank in 0usize..256) {
        let t = Topology::new(gpus_per_node);
        let node = t.node_of(rank);
        prop_assert!(rank >= node * gpus_per_node);
        prop_assert!(rank < (node + 1) * gpus_per_node);
    }

    #[test]
    fn worst_link_is_symmetric_under_rank_order(a in 0usize..64, b in 0usize..64) {
        let t = Topology::meluxina();
        prop_assert_eq!(t.link_between(a, b), t.link_between(b, a));
    }

    #[test]
    fn hierarchical_cost_is_sandwiched_between_nvlink_and_flat_ib(
        gpus_per_node in 1usize..9,
        mut ranks in proptest::collection::vec(0usize..128, 32),
        len in 2usize..32,
        bytes in 0usize..(1 << 26),
    ) {
        // The charged two-level cost can never undercut running the whole
        // group on one NVLink island, and size-based selection means it can
        // never exceed the flat single-level charge on the slow fabric.
        ranks.truncate(len);
        ranks.sort_unstable();
        ranks.dedup();
        if ranks.len() < 2 {
            // All draws collided; extend to keep the group non-trivial.
            let next = ranks[0] + 1;
            ranks.push(next);
        }
        let t = Topology::new(gpus_per_node);
        let placement = t.placement(&ranks);
        let p = CostParams::a100_cluster();
        let n = ranks.len();
        for op in CollectiveOp::ALL {
            let c = p.phased_collective_time(op, bytes, placement);
            let nv = p.collective_time(op, n, bytes, Link::NvLink);
            let ib = p.collective_time(op, n, bytes, Link::InfiniBand);
            prop_assert!(c.total >= nv, "{op:?} below NVLink bound: {c:?} vs {nv}");
            prop_assert!(c.total <= ib, "{op:?} above flat IB charge: {c:?} vs {ib}");
            // The flat field must be exactly the legacy worst-link charge.
            let flat = p.collective_time(op, n, bytes, t.worst_link(&ranks));
            prop_assert_eq!(c.flat, flat, "{:?}", op);
        }
    }
}

proptest! {
    // Each case spawns threads; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn all_reduce_equals_sum_of_deposits(n in 2usize..6, seed in 0u64..1000) {
        let values: Vec<f32> = (0..n).map(|r| ((seed + r as u64) % 17) as f32 - 8.0).collect();
        let expected: f32 = values.iter().sum();
        let vals = values.clone();
        let out = Cluster::a100(n).run(move |ctx| {
            let g = ctx.world_group();
            let t = DenseTensor::from_matrix(Matrix::full(2, 2, vals[ctx.rank]));
            g.all_reduce(ctx, t).matrix()[(1, 1)]
        });
        for v in out.results {
            prop_assert!((v - expected).abs() < 1e-5);
        }
    }

    #[test]
    fn shift_by_group_size_is_identity(n in 2usize..6, offset_mult in 1usize..3) {
        let out = Cluster::a100(n).run(move |ctx| {
            let g = ctx.world_group();
            let t = DenseTensor::from_matrix(Matrix::full(1, 1, ctx.rank as f32));
            // Shifting by a multiple of the group size returns own payload.
            let got = g.shift(ctx, (n * offset_mult) as isize, t);
            got.matrix()[(0, 0)] as usize == ctx.rank
        });
        prop_assert!(out.results.iter().all(|&ok| ok));
    }

    #[test]
    fn shared_collectives_match_owned_bitwise(
        n in 2usize..5,
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        // The `Arc`-shared zero-copy path and the historical cloning path
        // must agree bitwise for every collective, on arbitrary payload
        // shapes (combine order is pinned to ascending member index).
        let out = Cluster::a100(n).run(move |ctx| {
            let g = ctx.world_group();
            let mine = {
                let mut rng = tesseract_tensor::Xoshiro256StarStar::seed_from_u64(
                    seed.wrapping_mul(31).wrapping_add(ctx.rank as u64),
                );
                DenseTensor::from_matrix(Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng))
            };
            let owned_b = g.broadcast(ctx, 0, (ctx.rank == 0).then(|| mine.clone()));
            let shared_b =
                g.broadcast_shared(ctx, 0, (ctx.rank == 0).then(|| std::sync::Arc::new(mine.clone())));
            let b_ok = owned_b.matrix() == shared_b.matrix();
            let owned_ar = g.all_reduce(ctx, mine.clone());
            let shared_ar = g.all_reduce_shared(ctx, mine.clone());
            let ar_ok = owned_ar.matrix() == shared_ar.matrix();
            let owned_r = g.reduce(ctx, 0, mine.clone());
            let shared_r = g.reduce_shared(ctx, 0, mine.clone());
            let r_ok = match (&owned_r, &shared_r) {
                (Some(a), Some(b)) => a.matrix() == b.matrix(),
                (None, None) => true,
                _ => false,
            };
            let owned_g = g.all_gather(ctx, mine.clone());
            let shared_g = g.all_gather_shared(ctx, std::sync::Arc::new(mine));
            let g_ok = owned_g.len() == shared_g.len()
                && owned_g.iter().zip(shared_g.iter()).all(|(a, b)| a.matrix() == b.matrix());
            b_ok && ar_ok && r_ok && g_ok
        });
        prop_assert!(out.results.iter().all(|&ok| ok));
    }

    #[test]
    fn split_phase_matches_blocking_bitwise(
        n in 2usize..5,
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        // `begin` + `complete` must agree bitwise with the blocking call
        // for all four data-moving collectives on arbitrary payload shapes
        // (the fold order is pinned to ascending member index either way).
        let out = Cluster::a100(n).run(move |ctx| {
            let g = ctx.world_group();
            let mine = {
                let mut rng = tesseract_tensor::Xoshiro256StarStar::seed_from_u64(
                    seed.wrapping_mul(37).wrapping_add(ctx.rank as u64),
                );
                DenseTensor::from_matrix(Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng))
            };
            let blocking_b = g.broadcast(ctx, 0, (ctx.rank == 0).then(|| mine.clone()));
            let split_b =
                g.broadcast_begin(ctx, 0, (ctx.rank == 0).then(|| mine.clone())).complete(ctx);
            let b_ok = blocking_b.matrix() == split_b.matrix();
            let blocking_ar = g.all_reduce(ctx, mine.clone());
            let split_ar = g.all_reduce_begin(ctx, mine.clone()).complete(ctx);
            let ar_ok = blocking_ar.matrix() == split_ar.matrix();
            let blocking_r = g.reduce(ctx, 0, mine.clone());
            let split_r = g.reduce_begin(ctx, 0, mine.clone()).complete(ctx);
            let r_ok = match (&blocking_r, &split_r) {
                (Some(a), Some(b)) => a.matrix() == b.matrix(),
                (None, None) => true,
                _ => false,
            };
            let blocking_g = g.all_gather(ctx, mine.clone());
            let split_g = g.all_gather_begin(ctx, mine).complete(ctx);
            let g_ok = blocking_g.len() == split_g.len()
                && blocking_g.iter().zip(split_g.iter()).all(|(a, b)| a.matrix() == b.matrix());
            b_ok && ar_ok && r_ok && g_ok
        });
        prop_assert!(out.results.iter().all(|&ok| ok));
    }

    #[test]
    fn all_gather_preserves_order(n in 2usize..6) {
        let out = Cluster::a100(n).run(move |ctx| {
            let g = ctx.world_group();
            let t = DenseTensor::from_matrix(Matrix::full(1, 1, ctx.rank as f32 * 3.0));
            let all = g.all_gather(ctx, t);
            all.iter().enumerate().all(|(i, v)| v.matrix()[(0, 0)] == i as f32 * 3.0)
        });
        prop_assert!(out.results.iter().all(|&ok| ok));
    }
}
