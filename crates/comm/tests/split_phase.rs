//! Semantics of the split-phase (`*_begin` / `complete`) collectives:
//! bitwise-identical data to the blocking calls, exact overlap accounting,
//! and diagnosable panics on sequencing misuse.

use std::sync::Arc;

use tesseract_comm::{Cluster, RunConfig};
use tesseract_tensor::{DenseTensor, Matrix, TensorLike, Xoshiro256StarStar};

/// A cluster whose fabric gives up in seconds instead of minutes, so
/// misuse tests that wedge peers fail fast. Set per cluster via the
/// builder — mutating the process environment from parallel tests is a
/// race.
fn fail_fast(world: usize) -> Cluster {
    RunConfig::new(world).with_rendezvous_timeout_secs(2).cluster()
}

fn rank_payload(rank: usize) -> DenseTensor {
    let mut rng = Xoshiro256StarStar::seed_from_u64(1000 + rank as u64);
    DenseTensor::from_matrix(Matrix::random_uniform(3, 5, -1.0, 1.0, &mut rng))
}

/// `begin` immediately followed by `complete` must be indistinguishable
/// from the blocking collective: same data bit for bit, same virtual
/// clocks, same wire/call stats, and zero hidden time (there was no
/// compute to hide the wait under).
#[test]
fn immediate_begin_complete_matches_blocking_exactly() {
    let n = 4;
    let blocking = Cluster::a100(n).run(|ctx| {
        let g = ctx.world_group();
        let mine = rank_payload(ctx.rank);
        let b = g.broadcast_shared(ctx, 0, (ctx.rank == 0).then(|| Arc::new(mine.clone())));
        let r = g.reduce_shared(ctx, 1, mine.clone());
        let ar = g.all_reduce_shared(ctx, mine.clone());
        let ag = g.all_gather_shared(ctx, Arc::new(mine));
        ctx.flush_compute();
        (
            b.matrix().clone(),
            r.map(|x| x.matrix().clone()),
            ar.matrix().clone(),
            ag.iter().map(|x| x.matrix().clone()).collect::<Vec<_>>(),
        )
    });
    let split = Cluster::a100(n).run(|ctx| {
        let g = ctx.world_group();
        let mine = rank_payload(ctx.rank);
        let b = g
            .broadcast_shared_begin(ctx, 0, (ctx.rank == 0).then(|| Arc::new(mine.clone())))
            .complete(ctx);
        let r = g.reduce_shared_begin(ctx, 1, mine.clone()).complete(ctx);
        let ar = g.all_reduce_shared_begin(ctx, mine.clone()).complete(ctx);
        let ag = g.all_gather_shared_begin(ctx, Arc::new(mine)).complete(ctx);
        ctx.flush_compute();
        (
            b.matrix().clone(),
            r.map(|x| x.matrix().clone()),
            ar.matrix().clone(),
            ag.iter().map(|x| x.matrix().clone()).collect::<Vec<_>>(),
        )
    });
    assert_eq!(blocking.results, split.results);
    assert!((blocking.makespan() - split.makespan()).abs() < 1e-15);
    assert_eq!(blocking.comm.total_calls(), split.comm.total_calls());
    assert_eq!(blocking.comm.total_wire_bytes(), split.comm.total_wire_bytes());
    assert_eq!(split.comm.total_hidden_time(), 0.0);
    for (b, s) in blocking.reports.iter().zip(split.reports.iter()) {
        assert_eq!(b.comm_wait_nanos, s.comm_wait_nanos);
        assert_eq!(s.overlap_hidden_nanos, 0);
    }
}

/// The owned-value `*_begin` wrappers must match the owned blocking calls,
/// including the counted-copy accounting their deferred clones perform.
#[test]
fn owned_begin_variants_match_blocking_with_identical_copy_counts() {
    let n = 3;
    let blocking = Cluster::a100(n).run(|ctx| {
        let g = ctx.world_group();
        let mine = rank_payload(ctx.rank);
        let b = g.broadcast(ctx, 0, (ctx.rank == 0).then(|| mine.clone()));
        let r = g.reduce(ctx, 1, mine.clone());
        let ar = g.all_reduce(ctx, mine.clone());
        let ag = g.all_gather(ctx, mine);
        (
            b.matrix().clone(),
            r.map(|x| x.matrix().clone()),
            ar.matrix().clone(),
            ag.iter().map(|x| x.matrix().clone()).collect::<Vec<_>>(),
        )
    });
    let split = Cluster::a100(n).run(|ctx| {
        let g = ctx.world_group();
        let mine = rank_payload(ctx.rank);
        let b = g.broadcast_begin(ctx, 0, (ctx.rank == 0).then(|| mine.clone())).complete(ctx);
        let r = g.reduce_begin(ctx, 1, mine.clone()).complete(ctx);
        let ar = g.all_reduce_begin(ctx, mine.clone()).complete(ctx);
        let ag = g.all_gather_begin(ctx, mine).complete(ctx);
        (
            b.matrix().clone(),
            r.map(|x| x.matrix().clone()),
            ar.matrix().clone(),
            ag.iter().map(|x| x.matrix().clone()).collect::<Vec<_>>(),
        )
    });
    assert_eq!(blocking.results, split.results);
    assert_eq!(blocking.comm.total_copies(), split.comm.total_copies());
    assert_eq!(blocking.comm.total_copy_bytes(), split.comm.total_copy_bytes());
}

/// Compute issued between `begin` and `complete` hides the rendezvous
/// wait: the clock charges only the non-overlapped remainder, the hidden
/// portion lands in the meter/stats, and the makespan strictly improves —
/// with bitwise-identical data.
#[test]
fn overlap_charges_only_the_non_overlapped_remainder() {
    let n = 2;
    let serial = Cluster::a100(n).run(|ctx| {
        let g = ctx.world_group();
        let payload = Arc::new(DenseTensor::from_matrix(Matrix::full(64, 64, 1.5)));
        let b = g.broadcast_shared(ctx, 0, (ctx.rank == 0).then(|| Arc::clone(&payload)));
        let t = DenseTensor::from_matrix(Matrix::full(24, 24, 0.5));
        let _ = t.matmul(&t, &mut ctx.meter);
        ctx.flush_compute();
        b.matrix().clone()
    });
    let overlapped = Cluster::a100(n).run(|ctx| {
        let g = ctx.world_group();
        let payload = Arc::new(DenseTensor::from_matrix(Matrix::full(64, 64, 1.5)));
        let pending =
            g.broadcast_shared_begin(ctx, 0, (ctx.rank == 0).then(|| Arc::clone(&payload)));
        let t = DenseTensor::from_matrix(Matrix::full(24, 24, 0.5));
        let _ = t.matmul(&t, &mut ctx.meter);
        let b = pending.complete(ctx);
        ctx.flush_compute();
        b.matrix().clone()
    });
    assert_eq!(serial.results, overlapped.results, "overlap must not change data");
    assert!(
        overlapped.makespan() < serial.makespan(),
        "hiding the broadcast under the GEMM must shrink the makespan: \
         {} vs {}",
        overlapped.makespan(),
        serial.makespan()
    );
    assert!(overlapped.comm.total_hidden_time() > 0.0);
    assert_eq!(serial.comm.total_hidden_time(), 0.0);
    for (s, o) in serial.reports.iter().zip(overlapped.reports.iter()) {
        assert!(o.overlap_hidden_nanos > 0, "rank {} hid no wait", o.rank);
        assert_eq!(s.overlap_hidden_nanos, 0);
        assert!(o.comm_wait_nanos < s.comm_wait_nanos, "rank {} paid the full wait", o.rank);
        // Same compute either way; the win is pure communication time.
        assert_eq!(s.compute_time, o.compute_time);
        // The makespan decomposition must survive overlap accounting.
        assert!((o.compute_time + o.comm_time - o.virtual_time).abs() < 1e-12);
    }
}

/// Pending collectives on one group form a FIFO; completing a younger
/// begin before an older one is a sequencing bug and must panic with a
/// pinned diagnostic.
#[test]
#[should_panic(expected = "split-phase collective completed out of order: \
                           completing broadcast seq 1 but the oldest outstanding begin is seq 0")]
fn out_of_order_complete_panics() {
    fail_fast(2).run(|ctx| {
        let g = ctx.world_group();
        let first = g.broadcast_shared_begin(
            ctx,
            0,
            (ctx.rank == 0).then(|| Arc::new(DenseTensor::from_matrix(Matrix::full(2, 2, 1.0)))),
        );
        let second = g.broadcast_shared_begin(
            ctx,
            0,
            (ctx.rank == 0).then(|| Arc::new(DenseTensor::from_matrix(Matrix::full(2, 2, 2.0)))),
        );
        let _ = second.complete(ctx);
        let _ = first.complete(ctx);
    });
}

/// Dropping a pending collective without completing it would silently
/// desynchronize the group's SPMD schedule; the handle panics instead.
#[test]
#[should_panic(expected = "split-phase broadcast (seq 0) dropped without complete()")]
fn dropping_pending_without_complete_panics() {
    fail_fast(1).run(|ctx| {
        let g = ctx.world_group();
        let pending = g.broadcast_shared_begin(
            ctx,
            0,
            Some(Arc::new(DenseTensor::from_matrix(Matrix::full(2, 2, 1.0)))),
        );
        drop(pending);
    });
}
