//! Optimizers operating on distributed parameter blocks.
//!
//! Because gradients are already synchronized by the tensor-parallel
//! backward (depth all-reduce) and the data-parallel sync, every rank can
//! update its blocks locally with no further communication — identical
//! inputs produce identical updates. State is keyed by visit order, which
//! the layers guarantee to be deterministic.
//!
//! Implemented: SGD (+momentum, weight decay), AdamW (the paper's Figure-7
//! setup: Adam, lr 3e-3, weight decay 0.3 — decoupled decay as in ViT
//! training practice), plus the large-batch optimizers the introduction
//! cites: LARS (You et al. 2017) and LAMB (You et al. 2020). LAMB/LARS use
//! per-block norms for the trust ratio; on the shadow backend (no values)
//! the ratio falls back to 1.
//!
//! Note on epsilon: updates use `1/sqrt(v̂ + ε²)` (epsilon inside the root)
//! because the tensor trait exposes a fused `rsqrt_add`; for the ε = 1e-8
//! defaults the difference from `1/(sqrt(v̂)+ε)` is far below f32 noise.

use tesseract_comm::Payload;
use tesseract_core::module::{Module, ParamRef};
use tesseract_tensor::{Meter, TensorLike};

/// Plain SGD with optional momentum and (coupled) weight decay.
pub struct Sgd<T> {
    pub lr: f32,
    pub momentum: f32,
    pub weight_decay: f32,
    velocity: Vec<T>,
}

impl<T: TensorLike> Sgd<T> {
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self { lr, momentum, weight_decay, velocity: Vec::new() }
    }

    /// Updates every parameter of `model` (any world type `G`).
    pub fn step<G>(&mut self, m: &mut Meter, model: &mut dyn Module<T, G>)
    where
        T: Payload,
    {
        self.step_params(m, |f| model.visit_params(f));
    }

    /// Closure-based entry point for parameter sets that are not a
    /// [`Module`] (the serial reference model, unit tests).
    pub fn step_params(
        &mut self,
        m: &mut Meter,
        visit: impl FnOnce(&mut dyn FnMut(ParamRef<'_, T>)),
    ) {
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        let mut idx = 0;
        visit(&mut |pr: ParamRef<'_, T>| {
            let mut g = pr.grad.clone();
            if wd != 0.0 {
                g = g.add(&pr.weight.scale(wd, m), m);
            }
            if mu != 0.0 {
                if velocity.len() <= idx {
                    velocity.push(T::zeros(g.rows(), g.cols()));
                }
                let v = velocity[idx].scale(mu, m).add(&g, m);
                velocity[idx] = v.clone();
                g = v;
            }
            *pr.weight = pr.weight.sub(&g.scale(lr, m), m);
            idx += 1;
        });
    }
}

/// AdamW: Adam moments with decoupled weight decay.
pub struct AdamW<T> {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    t: i32,
    moments: Vec<(T, T)>,
}

impl<T: TensorLike> AdamW<T> {
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay, t: 0, moments: Vec::new() }
    }

    /// The Adam direction `m̂ ∘ 1/sqrt(v̂ + ε²)` for one parameter,
    /// updating stored moments. Shared by AdamW and LAMB.
    fn direction(
        moments: &mut Vec<(T, T)>,
        idx: usize,
        g: &T,
        t: i32,
        (b1, b2, eps): (f32, f32, f32),
        m: &mut Meter,
    ) -> T {
        if moments.len() <= idx {
            moments.push((T::zeros(g.rows(), g.cols()), T::zeros(g.rows(), g.cols())));
        }
        let (mom, vel) = &mut moments[idx];
        *mom = mom.scale(b1, m).add(&g.scale(1.0 - b1, m), m);
        let g2 = g.hadamard(g, m);
        *vel = vel.scale(b2, m).add(&g2.scale(1.0 - b2, m), m);
        let m_hat = mom.scale(1.0 / (1.0 - b1.powi(t)), m);
        let v_hat = vel.scale(1.0 / (1.0 - b2.powi(t)), m);
        let denom = v_hat.rsqrt_add(eps * eps, m);
        m_hat.hadamard(&denom, m)
    }

    /// Updates every parameter of `model` (any world type `G`).
    pub fn step<G>(&mut self, m: &mut Meter, model: &mut dyn Module<T, G>)
    where
        T: Payload,
    {
        self.step_params(m, |f| model.visit_params(f));
    }

    /// Closure-based entry point for parameter sets that are not a
    /// [`Module`] (the serial reference model, unit tests).
    pub fn step_params(
        &mut self,
        m: &mut Meter,
        visit: impl FnOnce(&mut dyn FnMut(ParamRef<'_, T>)),
    ) {
        self.t += 1;
        let (lr, wd, t) = (self.lr, self.weight_decay, self.t);
        let betas = (self.beta1, self.beta2, self.eps);
        let moments = &mut self.moments;
        let mut idx = 0;
        visit(&mut |pr: ParamRef<'_, T>| {
            let dir = Self::direction(moments, idx, pr.grad, t, betas, m);
            let mut w = pr.weight.sub(&dir.scale(lr, m), m);
            if wd != 0.0 {
                w = w.sub(&pr.weight.scale(lr * wd, m), m);
            }
            *pr.weight = w;
            idx += 1;
        });
    }
}

/// LAMB (You et al. 2020): Adam direction with a per-block trust ratio
/// `‖w‖ / ‖r + wd·w‖`.
pub struct Lamb<T> {
    pub lr: f32,
    pub weight_decay: f32,
    pub eps: f32,
    beta1: f32,
    beta2: f32,
    t: i32,
    moments: Vec<(T, T)>,
}

impl<T: TensorLike> Lamb<T> {
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self { lr, weight_decay, eps: 1e-8, beta1: 0.9, beta2: 0.999, t: 0, moments: Vec::new() }
    }

    /// Updates every parameter of `model` (any world type `G`).
    pub fn step<G>(&mut self, m: &mut Meter, model: &mut dyn Module<T, G>)
    where
        T: Payload,
    {
        self.step_params(m, |f| model.visit_params(f));
    }

    /// Closure-based entry point for parameter sets that are not a
    /// [`Module`] (the serial reference model, unit tests).
    pub fn step_params(
        &mut self,
        m: &mut Meter,
        visit: impl FnOnce(&mut dyn FnMut(ParamRef<'_, T>)),
    ) {
        self.t += 1;
        let (lr, wd, t) = (self.lr, self.weight_decay, self.t);
        let betas = (self.beta1, self.beta2, self.eps);
        let moments = &mut self.moments;
        let mut idx = 0;
        visit(&mut |pr: ParamRef<'_, T>| {
            let mut r = AdamW::direction(moments, idx, pr.grad, t, betas, m);
            if wd != 0.0 {
                r = r.add(&pr.weight.scale(wd, m), m);
            }
            let trust = match (pr.weight.frobenius(), r.frobenius()) {
                (Some(wn), Some(rn)) if wn > 0.0 && rn > 0.0 => (wn / rn).clamp(0.0, 10.0),
                _ => 1.0,
            };
            *pr.weight = pr.weight.sub(&r.scale(lr * trust, m), m);
            idx += 1;
        });
    }
}

/// LARS (You et al. 2017): SGD-with-momentum direction scaled by the layer
/// trust ratio `η·‖w‖ / (‖g‖ + wd·‖w‖)`.
pub struct Lars<T> {
    pub lr: f32,
    pub momentum: f32,
    pub weight_decay: f32,
    pub eta: f32,
    velocity: Vec<T>,
}

impl<T: TensorLike> Lars<T> {
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self { lr, momentum: 0.9, weight_decay, eta: 1e-3, velocity: Vec::new() }
    }

    /// Updates every parameter of `model` (any world type `G`).
    pub fn step<G>(&mut self, m: &mut Meter, model: &mut dyn Module<T, G>)
    where
        T: Payload,
    {
        self.step_params(m, |f| model.visit_params(f));
    }

    /// Closure-based entry point for parameter sets that are not a
    /// [`Module`] (the serial reference model, unit tests).
    pub fn step_params(
        &mut self,
        m: &mut Meter,
        visit: impl FnOnce(&mut dyn FnMut(ParamRef<'_, T>)),
    ) {
        let (lr, mu, wd, eta) = (self.lr, self.momentum, self.weight_decay, self.eta);
        let velocity = &mut self.velocity;
        let mut idx = 0;
        visit(&mut |pr: ParamRef<'_, T>| {
            let local_lr = match (pr.weight.frobenius(), pr.grad.frobenius()) {
                (Some(wn), Some(gn)) if wn > 0.0 && gn + wd * wn > 0.0 => eta * wn / (gn + wd * wn),
                _ => 1.0,
            };
            let mut g = pr.grad.clone();
            if wd != 0.0 {
                g = g.add(&pr.weight.scale(wd, m), m);
            }
            if velocity.len() <= idx {
                velocity.push(T::zeros(g.rows(), g.cols()));
            }
            let v = velocity[idx].scale(mu, m).add(&g.scale(local_lr * lr, m), m);
            velocity[idx] = v.clone();
            *pr.weight = pr.weight.sub(&v, m);
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_tensor::{DenseTensor, Matrix};

    fn quadratic_step<F: FnMut(&mut DenseTensor, &mut DenseTensor)>(
        w: &mut DenseTensor,
        mut update: F,
    ) {
        // Loss = 0.5‖w‖² → grad = w.
        let mut g = w.clone();
        update(w, &mut g);
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut opt = Sgd::<DenseTensor>::new(0.1, 0.0, 0.0);
        let mut w = DenseTensor::from_matrix(Matrix::full(2, 2, 1.0));
        let mut m = Meter::new();
        for _ in 0..80 {
            quadratic_step(&mut w, |w, g| {
                opt.step_params(&mut m, |f| f(ParamRef { weight: w, grad: g }));
            });
        }
        // w shrinks by (1 - lr) per step: 2·0.9^80 ≈ 4.4e-4.
        assert!(w.matrix().frobenius_norm() < 1e-3);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |mu: f32| {
            let mut opt = Sgd::<DenseTensor>::new(0.05, mu, 0.0);
            let mut w = DenseTensor::from_matrix(Matrix::full(1, 1, 1.0));
            let mut m = Meter::new();
            for _ in 0..10 {
                quadratic_step(&mut w, |w, g| {
                    opt.step_params(&mut m, |f| f(ParamRef { weight: w, grad: g }));
                });
            }
            w.matrix()[(0, 0)].abs()
        };
        assert!(run(0.9) < run(0.0), "momentum should reach lower |w| in 10 steps");
    }

    #[test]
    fn adamw_descends_quadratic() {
        let mut opt = AdamW::<DenseTensor>::new(0.05, 0.0);
        let mut w = DenseTensor::from_matrix(Matrix::full(2, 3, 2.0));
        let mut m = Meter::new();
        for _ in 0..200 {
            quadratic_step(&mut w, |w, g| {
                opt.step_params(&mut m, |f| f(ParamRef { weight: w, grad: g }));
            });
        }
        assert!(w.matrix().frobenius_norm() < 0.05, "norm {}", w.matrix().frobenius_norm());
    }

    #[test]
    fn adamw_weight_decay_shrinks_weights_without_gradient() {
        let mut opt = AdamW::<DenseTensor>::new(0.1, 0.5);
        let mut w = DenseTensor::from_matrix(Matrix::full(1, 1, 1.0));
        let mut g = DenseTensor::from_matrix(Matrix::zeros(1, 1));
        let mut m = Meter::new();
        let before = w.matrix()[(0, 0)];
        opt.step_params(&mut m, |f| f(ParamRef { weight: &mut w, grad: &mut g }));
        assert!(w.matrix()[(0, 0)] < before);
    }

    #[test]
    fn lamb_descends_quadratic() {
        let mut opt = Lamb::<DenseTensor>::new(0.1, 0.0);
        let mut w = DenseTensor::from_matrix(Matrix::full(2, 2, 1.0));
        let mut m = Meter::new();
        let initial = w.matrix().frobenius_norm();
        for _ in 0..50 {
            quadratic_step(&mut w, |w, g| {
                opt.step_params(&mut m, |f| f(ParamRef { weight: w, grad: g }));
            });
        }
        assert!(w.matrix().frobenius_norm() < initial * 0.5);
    }

    #[test]
    fn lars_descends_quadratic() {
        let mut opt = Lars::<DenseTensor>::new(1.0, 0.0);
        let mut w = DenseTensor::from_matrix(Matrix::full(2, 2, 1.0));
        let mut m = Meter::new();
        let initial = w.matrix().frobenius_norm();
        for _ in 0..100 {
            quadratic_step(&mut w, |w, g| {
                opt.step_params(&mut m, |f| f(ParamRef { weight: w, grad: g }));
            });
        }
        assert!(w.matrix().frobenius_norm() < initial);
    }

    #[test]
    fn state_tracks_multiple_params_independently() {
        let mut opt = Sgd::<DenseTensor>::new(0.5, 0.9, 0.0);
        let mut w1 = DenseTensor::from_matrix(Matrix::full(1, 1, 1.0));
        let mut w2 = DenseTensor::from_matrix(Matrix::full(2, 2, 2.0));
        let mut m = Meter::new();
        for _ in 0..3 {
            let mut g1 = w1.clone();
            let mut g2 = w2.clone();
            opt.step_params(&mut m, |f| {
                f(ParamRef { weight: &mut w1, grad: &mut g1 });
                f(ParamRef { weight: &mut w2, grad: &mut g2 });
            });
        }
        assert_eq!(opt.velocity.len(), 2);
        assert_eq!(opt.velocity[0].shape(), (1, 1));
        assert_eq!(opt.velocity[1].shape(), (2, 2));
    }
}
