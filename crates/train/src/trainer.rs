//! Training loops for the Figure-7 experiment: the same ViT trained (a) on
//! a single device and (b) on Tesseract `[q, q, d]` grids, with identical
//! seeds, identical data streams and identical AdamW hyperparameters —
//! reproducing the paper's finding that Tesseract "does not affect the
//! model's accuracy".

use tesseract_comm::Cluster;
use tesseract_core::partition::a_block;
use tesseract_core::{GridShape, Module, TesseractGrid};
use tesseract_tensor::{nn, DenseTensor, Matrix, Meter};

use crate::data::SyntheticVisionDataset;
use crate::optim::AdamW;
use crate::vit::{distributed_cross_entropy, SerialViT, TesseractViT, ViTConfig};

/// Hyperparameters of one training run.
#[derive(Clone, Copy, Debug)]
pub struct TrainSettings {
    pub epochs: usize,
    pub steps_per_epoch: usize,
    /// Paper Figure 7: Adam, lr 3e-3, weight decay 0.3 (we scale the lr
    /// down for the tiny model; the *identical-curves* claim is what is
    /// being reproduced, not the absolute accuracy).
    pub lr: f32,
    pub weight_decay: f32,
    /// Model/optimizer seed (paper: "we fixed random seeds and
    /// initialization methods").
    pub seed: u64,
    /// Data stream seed (shared across all arrangements).
    pub data_seed: u64,
    /// Clip gradients to this global norm before each optimizer step
    /// (`None`: no clipping — the paper's Figure-7 setup).
    pub clip_grad_norm: Option<f32>,
}

impl Default for TrainSettings {
    fn default() -> Self {
        Self {
            epochs: 3,
            steps_per_epoch: 8,
            lr: 3e-3,
            weight_decay: 0.3,
            seed: 42,
            data_seed: 1234,
            clip_grad_norm: None,
        }
    }
}

/// Per-epoch metrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochMetrics {
    pub loss: f32,
    pub accuracy: f32,
}

/// A full training trajectory (the data behind one Figure-7 curve).
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    pub epochs: Vec<EpochMetrics>,
}

impl TrainReport {
    pub fn final_accuracy(&self) -> f32 {
        self.epochs.last().map(|e| e.accuracy).unwrap_or(0.0)
    }

    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map(|e| e.loss).unwrap_or(f32::NAN)
    }
}

/// Trains the serial ViT — Figure 7's "single GPU" baseline curve.
pub fn train_serial(vcfg: ViTConfig, ds: &SyntheticVisionDataset, s: TrainSettings) -> TrainReport {
    let b = vcfg.body.batch;
    let mut model = SerialViT::new(vcfg, s.seed);
    let mut opt: AdamW<DenseTensor> = AdamW::new(s.lr, s.weight_decay);
    let mut scratch = Meter::new();
    let mut report = TrainReport::default();
    let mut step_idx = 0u64;
    for _epoch in 0..s.epochs {
        let mut loss_sum = 0.0f32;
        let mut correct = 0usize;
        for _ in 0..s.steps_per_epoch {
            let (x, labels) = ds.batch_for_step(b, s.data_seed, step_idx);
            step_idx += 1;
            let logits = model.forward(&x);
            let (loss, dlogits) = nn::softmax_cross_entropy(&logits, &labels);
            correct += nn::count_correct(&logits, &labels);
            loss_sum += loss;
            model.backward(&dlogits);
            if let Some(max_norm) = s.clip_grad_norm {
                crate::clip::clip_grad_norm_params(
                    &mut |f| visit_serial_vit(&mut model, f),
                    max_norm,
                );
            }
            opt.step_params(&mut scratch, |f| visit_serial_vit(&mut model, f));
            model.zero_grad();
        }
        report.epochs.push(EpochMetrics {
            loss: loss_sum / s.steps_per_epoch as f32,
            accuracy: correct as f32 / (s.steps_per_epoch * b) as f32,
        });
    }
    report
}

/// Trains the Tesseract ViT on a `[q, q, d]` grid (rank 0's metrics are
/// returned; all ranks agree by construction).
pub fn train_tesseract(
    shape: GridShape,
    vcfg: ViTConfig,
    ds: &SyntheticVisionDataset,
    s: TrainSettings,
) -> TrainReport {
    let b = vcfg.body.batch;
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let _ = (i, j);
        let mut model = TesseractViT::<DenseTensor>::new(ctx, &grid, vcfg, s.seed);
        let mut opt: AdamW<DenseTensor> = AdamW::new(s.lr, s.weight_decay);
        let per = b / (shape.q * shape.d);
        let h = grid.a_row_block();
        let _ = k;
        let mut report = TrainReport::default();
        let mut step_idx = 0u64;
        for _epoch in 0..s.epochs {
            let mut loss_sum = 0.0f32;
            let mut correct_sum = 0usize;
            for _ in 0..s.steps_per_epoch {
                let (x, labels) = ds.batch_for_step(b, s.data_seed, step_idx);
                step_idx += 1;
                let x_loc = std::sync::Arc::new(DenseTensor::from_matrix(a_block(
                    &x,
                    shape,
                    grid.i(),
                    grid.j(),
                    grid.k(),
                )));
                let my_labels = &labels[h * per..(h + 1) * per];
                let logits = ctx.traced("step", "fwd", |ctx| model.forward(&grid, ctx, &x_loc));
                let (loss_local, dlogits, correct_local) =
                    distributed_cross_entropy(&grid, ctx, &logits, my_labels, b);
                ctx.traced("step", "bwd", |ctx| {
                    model.backward(&grid, ctx, &std::sync::Arc::new(dlogits))
                });
                if let Some(max_norm) = s.clip_grad_norm {
                    crate::clip::clip_grad_norm(&grid, ctx, &mut model, max_norm);
                }
                // Optimizer updates are local (grads already synchronized).
                let mut scratch = Meter::new();
                opt.step(&mut scratch, &mut model);
                model.zero_grad();
                // Aggregate metrics over the distinct row bands: sum across
                // the column fiber (i) and across depth (k); members of a
                // row hold identical values so the row is not reduced.
                let packed = DenseTensor::from_matrix(Matrix::from_vec(
                    1,
                    2,
                    vec![loss_local, correct_local as f32],
                ));
                let packed = grid.col.all_reduce(ctx, packed);
                let packed = if shape.d > 1 { grid.depth.all_reduce(ctx, packed) } else { packed };
                loss_sum += packed.matrix()[(0, 0)] / b as f32;
                correct_sum += packed.matrix()[(0, 1)] as usize;
            }
            report.epochs.push(EpochMetrics {
                loss: loss_sum / s.steps_per_epoch as f32,
                accuracy: correct_sum as f32 / (s.steps_per_epoch * b) as f32,
            });
        }
        report
    });
    out.results.into_iter().next().expect("rank 0 report")
}

/// Visits every (weight, grad) pair of a serial ViT as `DenseTensor`s so
/// the generic optimizers can update it. AdamW/SGD updates are elementwise,
/// so any consistent visit order yields the same trained weights as the
/// distributed runs (whose blocks partition the same matrices).
pub fn visit_serial_vit(
    model: &mut SerialViT,
    f: &mut dyn FnMut(tesseract_core::layers::linear::ParamRef<'_, DenseTensor>),
) {
    visit_serial_linear(&mut model.embed, f);
    for layer in &mut model.body.layers {
        visit_serial_linear(&mut layer.attn.wq, f);
        visit_serial_linear(&mut layer.attn.wk, f);
        visit_serial_linear(&mut layer.attn.wv, f);
        visit_serial_linear(&mut layer.attn.wo, f);
        visit_serial_linear(&mut layer.mlp.fc1, f);
        visit_serial_linear(&mut layer.mlp.fc2, f);
    }
    visit_serial_linear(&mut model.head, f);
}

/// Visits one serial linear layer's weight (and bias, if any).
pub fn visit_serial_linear(
    lin: &mut tesseract_baselines::serial::SerialLinear,
    f: &mut dyn FnMut(tesseract_core::layers::linear::ParamRef<'_, DenseTensor>),
) {
    visit_matrix_pair(&mut lin.w, &mut lin.dw, f);
    if let (Some(b), Some(db)) = (lin.bias.as_mut(), lin.dbias.as_mut()) {
        visit_matrix_pair(b, db, f);
    }
}

fn visit_matrix_pair(
    w: &mut Matrix,
    g: &mut Matrix,
    f: &mut dyn FnMut(tesseract_core::layers::linear::ParamRef<'_, DenseTensor>),
) {
    let mut wt = DenseTensor::from_matrix(w.clone());
    let mut gt = DenseTensor::from_matrix(g.clone());
    f(tesseract_core::layers::linear::ParamRef { weight: &mut wt, grad: &mut gt });
    *w = wt.into_matrix();
    *g = gt.into_matrix();
}
