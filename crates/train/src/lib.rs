//! # tesseract-train
//!
//! Training substrate for the Figure-7 reproduction: optimizers
//! (SGD/AdamW/LAMB/LARS), a deterministic synthetic stand-in for
//! ImageNet-100, a Vision Transformer in both Tesseract-parallel and
//! serial form, and training loops that produce the accuracy curves.

pub mod clip;
pub mod data;
pub mod optim;
pub mod trainer;
pub mod vit;

pub use clip::{clip_grad_norm, clip_grad_norm_params};
pub use data::SyntheticVisionDataset;
pub use optim::{AdamW, Lamb, Lars, Sgd};
pub use trainer::{train_serial, train_tesseract, EpochMetrics, TrainReport, TrainSettings};
pub use vit::{distributed_cross_entropy, SerialViT, TesseractViT, ViTConfig};
