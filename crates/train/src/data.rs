//! Synthetic stand-in for ImageNet-100 (paper §4.3, Figure 7).
//!
//! The Figure-7 experiment only needs a *learnable* classification task to
//! show that training curves coincide across Tesseract arrangements, so we
//! substitute a class-prototype dataset: each of `classes` classes has a
//! fixed random "image" of `patches × patch_dim` features (think: the patch
//! sequence a ViT sees after patchification), and samples are the prototype
//! plus Gaussian noise. Position information is inherent (prototypes differ
//! per patch position), so no learned positional embedding is needed.
//! Deterministic by seed, including the sampling stream.

use tesseract_tensor::{Matrix, Xoshiro256StarStar};

/// A deterministic synthetic vision dataset.
pub struct SyntheticVisionDataset {
    pub classes: usize,
    /// Patches per image (the Transformer sequence length `s`).
    pub patches: usize,
    /// Features per patch (the ViT patch-embedding input width).
    pub patch_dim: usize,
    /// Noise standard deviation added to prototypes.
    pub noise: f32,
    prototypes: Vec<Matrix>,
}

impl SyntheticVisionDataset {
    pub fn new(classes: usize, patches: usize, patch_dim: usize, noise: f32, seed: u64) -> Self {
        let mut root = Xoshiro256StarStar::seed_from_u64(seed);
        let prototypes = (0..classes)
            .map(|c| {
                let mut rng = root.fork(c as u64);
                Matrix::from_fn(patches, patch_dim, |_, _| rng.normal())
            })
            .collect();
        Self { classes, patches, patch_dim, noise, prototypes }
    }

    /// One sample: `[patches, patch_dim]` features and its label.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> (Matrix, usize) {
        let label = rng.next_usize(self.classes);
        let mut x = self.prototypes[label].clone();
        for v in x.data_mut() {
            *v += rng.normal() * self.noise;
        }
        (x, label)
    }

    /// A batch: features flattened to `[b·patches, patch_dim]` (the layout
    /// the Transformer consumes) plus per-sample labels.
    pub fn batch(&self, b: usize, rng: &mut Xoshiro256StarStar) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::with_capacity(b);
        let mut labels = Vec::with_capacity(b);
        for _ in 0..b {
            let (x, label) = self.sample(rng);
            rows.push(x);
            labels.push(label);
        }
        (Matrix::concat_rows(&rows), labels)
    }

    /// The deterministic batch for global step `step` of the stream seeded
    /// `stream_seed` — every rank (and every arrangement) sees identical
    /// data, which is what makes Figure-7 curves comparable.
    pub fn batch_for_step(&self, b: usize, stream_seed: u64, step: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(
            stream_seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        self.batch(b, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_consistent() {
        let ds = SyntheticVisionDataset::new(10, 4, 8, 0.1, 1);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let (x, label) = ds.sample(&mut rng);
        assert_eq!(x.shape(), (4, 8));
        assert!(label < 10);
        let (xb, labels) = ds.batch(3, &mut rng);
        assert_eq!(xb.shape(), (12, 8));
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn batches_are_deterministic_per_step() {
        let ds = SyntheticVisionDataset::new(10, 4, 8, 0.1, 1);
        let (x1, l1) = ds.batch_for_step(4, 99, 7);
        let (x2, l2) = ds.batch_for_step(4, 99, 7);
        assert_eq!(x1, x2);
        assert_eq!(l1, l2);
        let (x3, _) = ds.batch_for_step(4, 99, 8);
        assert_ne!(x1, x3);
    }

    #[test]
    fn noiseless_samples_equal_prototypes() {
        let ds = SyntheticVisionDataset::new(5, 3, 4, 0.0, 3);
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let (x, label) = ds.sample(&mut rng);
        assert_eq!(x, ds.prototypes[label]);
    }

    #[test]
    fn labels_cover_all_classes() {
        let ds = SyntheticVisionDataset::new(4, 2, 2, 0.1, 5);
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let (_, label) = ds.sample(&mut rng);
            seen[label] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
