//! Gradient clipping by global norm, built on [`Module::visit_params`].
//!
//! Every rank owns a disjoint block of the global gradient (B-type weight
//! blocks over the `q×q` mesh; bias blocks on row 0), so the global squared
//! norm is the sum of local squared Frobenius norms all-reduced over the
//! grid's row and column fibers. Depth replicas hold *identical* gradients
//! (the backward's depth all-reduce already synchronized them), so the
//! depth fiber is deliberately **not** reduced — including it would count
//! every block `d` times. The resulting scale factor is identical on every
//! rank, so the clip itself needs no further communication.

use tesseract_comm::{Payload, RankCtx};
use tesseract_core::module::Module;
use tesseract_core::TesseractGrid;
use tesseract_tensor::{DenseTensor, Matrix, Meter, TensorLike};

/// Sum of squared Frobenius norms of a module's local gradient blocks.
/// `None` when the backend carries no values (shadow tensors).
fn local_grad_norm_sq<T: TensorLike + Payload, G>(model: &mut dyn Module<T, G>) -> Option<f32> {
    let mut sq = 0.0f64;
    let mut measurable = true;
    model.visit_params(&mut |pr| match pr.grad.frobenius() {
        Some(n) => sq += (n as f64) * (n as f64),
        None => measurable = false,
    });
    measurable.then_some(sq as f32)
}

/// Scales every gradient by `max_norm / global_norm` when the global norm
/// exceeds `max_norm`. Returns the (pre-clip) global norm, or `None` on
/// value-free backends, where clipping is a no-op.
///
/// Collective: all grid ranks must call this together (it all-reduces one
/// scalar over the row and column fibers).
pub fn clip_grad_norm<T: TensorLike + Payload>(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    model: &mut dyn Module<T>,
    max_norm: f32,
) -> Option<f32> {
    assert!(max_norm > 0.0, "clip threshold must be positive");
    let local_sq = local_grad_norm_sq(model);
    // The scalar rides in a 1×1 dense tensor so both backends share the
    // collective path; shadow runs skip the reduce entirely (all ranks
    // agree the norm is unmeasurable, so the collective stays aligned).
    let local_sq = local_sq?;
    let packed = DenseTensor::from_matrix(Matrix::from_vec(1, 1, vec![local_sq]));
    let packed = grid.row.all_reduce(ctx, packed);
    let packed = grid.col.all_reduce(ctx, packed);
    let norm = packed.matrix()[(0, 0)].sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        let mut scratch = Meter::new();
        model.visit_params(&mut |pr| {
            *pr.grad = pr.grad.scale(scale, &mut scratch);
        });
        ctx.meter.merge(&scratch);
    }
    Some(norm)
}

/// Serial-reference counterpart of [`clip_grad_norm`]: clips a parameter
/// set exposed through a `visit_params`-style closure (the [`SerialViT`]
/// path), no communication. Returns the pre-clip global norm.
///
/// [`SerialViT`]: crate::vit::SerialViT
pub fn clip_grad_norm_params(
    visit: &mut dyn FnMut(&mut dyn FnMut(tesseract_core::ParamRef<'_, DenseTensor>)),
    max_norm: f32,
) -> f32 {
    assert!(max_norm > 0.0, "clip threshold must be positive");
    let mut sq = 0.0f64;
    visit(&mut |pr| {
        let n = pr.grad.frobenius().expect("dense tensors always have values");
        sq += (n as f64) * (n as f64);
    });
    let norm = (sq as f32).sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        let mut scratch = Meter::new();
        visit(&mut |pr| {
            *pr.grad = pr.grad.scale(scale, &mut scratch);
        });
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_core::ParamRef;

    #[test]
    fn serial_clip_scales_to_threshold() {
        // One 3-4-0 right triangle of gradients: global norm 5.
        let mut g1 = DenseTensor::from_matrix(Matrix::full(1, 1, 3.0));
        let mut g2 = DenseTensor::from_matrix(Matrix::full(1, 1, 4.0));
        let mut w1 = DenseTensor::from_matrix(Matrix::zeros(1, 1));
        let mut w2 = DenseTensor::from_matrix(Matrix::zeros(1, 1));
        let norm = clip_grad_norm_params(
            &mut |f| {
                f(ParamRef { weight: &mut w1, grad: &mut g1 });
                f(ParamRef { weight: &mut w2, grad: &mut g2 });
            },
            1.0,
        );
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((g1.matrix()[(0, 0)] - 0.6).abs() < 1e-6);
        assert!((g2.matrix()[(0, 0)] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn serial_clip_is_noop_below_threshold() {
        let mut g = DenseTensor::from_matrix(Matrix::full(1, 1, 0.5));
        let mut w = DenseTensor::from_matrix(Matrix::zeros(1, 1));
        let norm =
            clip_grad_norm_params(&mut |f| f(ParamRef { weight: &mut w, grad: &mut g }), 1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(g.matrix()[(0, 0)], 0.5);
    }
}
