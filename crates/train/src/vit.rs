//! Vision Transformer (paper §4.3): patch embedding → Transformer stack →
//! mean-pool → classifier head, in both Tesseract-parallel and serial
//! (single-GPU baseline) forms, sharing one parameter-id scheme so Figure 7
//! compares identical models.

use std::sync::Arc;

use tesseract_comm::{Payload, RankCtx};
use tesseract_core::module::{Module, ParamRef};
use tesseract_core::{TesseractGrid, TesseractLinear, TesseractTransformer, TransformerConfig};
use tesseract_tensor::nn;
use tesseract_tensor::{DenseTensor, Matrix, TensorLike};

use tesseract_baselines::serial::{SerialLinear, SerialTransformer};

/// Parameter ids reserved for the ViT-specific layers (body layers use
/// `0..layers·PARAM_IDS_PER_LAYER`).
const PID_EMBED: u64 = 1_000_000;
const PID_HEAD: u64 = 1_000_001;

/// ViT hyperparameters: a Transformer body plus patchification and head.
#[derive(Clone, Copy, Debug)]
pub struct ViTConfig {
    pub body: TransformerConfig,
    /// Input features per patch (must divide by q).
    pub patch_dim: usize,
    /// Output classes (must divide by q).
    pub classes: usize,
}

impl ViTConfig {
    pub fn validate_for_grid(&self, q: usize, d: usize) {
        self.body.validate_for_grid(q, d);
        assert_eq!(self.patch_dim % q, 0, "patch_dim must divide by q");
        assert_eq!(self.classes % q, 0, "classes must divide by q");
    }
}

/// Tesseract-parallel ViT.
pub struct TesseractViT<T> {
    pub embed: TesseractLinear<T>,
    pub body: TesseractTransformer<T>,
    pub head: TesseractLinear<T>,
    pub vcfg: ViTConfig,
}

impl<T: TensorLike + Payload> TesseractViT<T> {
    pub fn new(ctx: &RankCtx, grid: &TesseractGrid, vcfg: ViTConfig, seed: u64) -> Self {
        vcfg.validate_for_grid(grid.shape.q, grid.shape.d);
        Self {
            embed: TesseractLinear::new(
                ctx,
                grid,
                vcfg.patch_dim,
                vcfg.body.hidden,
                true,
                seed,
                PID_EMBED,
            ),
            body: TesseractTransformer::new(ctx, grid, vcfg.body, true, seed, 0),
            head: TesseractLinear::new(
                ctx,
                grid,
                vcfg.body.hidden,
                vcfg.classes,
                true,
                seed,
                PID_HEAD,
            ),
            vcfg,
        }
    }

    fn local_samples(&self, grid: &TesseractGrid) -> usize {
        self.vcfg.body.batch / (grid.shape.q * grid.shape.d)
    }
}

impl<T: TensorLike + Payload> Module<T> for TesseractViT<T> {
    fn name(&self) -> &'static str {
        "vit"
    }

    /// `x_local`: A-type block of the `[b·s, patch_dim]` patch features.
    /// Returns this rank's `[b/(dq), classes/q]` logits block.
    fn forward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, x_local: &Arc<T>) -> Arc<T> {
        let s = self.vcfg.body.seq;
        let e = self.embed.forward(grid, ctx, x_local);
        let feats = self.body.forward(grid, ctx, &e);
        // Mean-pool over the sequence of each local sample.
        let samples = self.local_samples(grid);
        let mut pooled = Vec::with_capacity(samples);
        for si in 0..samples {
            let rows = feats.slice_rows(si * s, (si + 1) * s, &mut ctx.meter);
            pooled.push(rows.col_sums(&mut ctx.meter).scale(1.0 / s as f32, &mut ctx.meter));
        }
        let pool = Arc::new(T::concat_rows(&pooled, &mut ctx.meter));
        self.head.forward(grid, ctx, &pool)
    }

    /// Backward from the logits gradient; accumulates all parameter grads
    /// and returns the gradient w.r.t. the local patch-feature block.
    fn backward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, d_logits: &Arc<T>) -> Arc<T> {
        let s = self.vcfg.body.seq;
        let d_pool = self.head.backward(grid, ctx, d_logits);
        // Un-pool: every sequence position receives 1/s of the pooled grad.
        let samples = self.local_samples(grid);
        let mut expanded = Vec::with_capacity(samples * s);
        for si in 0..samples {
            let row =
                d_pool.slice_rows(si, si + 1, &mut ctx.meter).scale(1.0 / s as f32, &mut ctx.meter);
            for _ in 0..s {
                expanded.push(row.clone());
            }
        }
        let d_feats = Arc::new(T::concat_rows(&expanded, &mut ctx.meter));
        let d_embed = self.body.backward(grid, ctx, &d_feats);
        self.embed.backward(grid, ctx, &d_embed)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        self.embed.visit_params(f);
        self.body.visit_params(f);
        self.head.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.embed.zero_grad();
        self.body.zero_grad();
        self.head.zero_grad();
    }
}

/// Serial single-GPU ViT with identical parameters.
pub struct SerialViT {
    pub embed: SerialLinear,
    pub body: SerialTransformer,
    pub head: SerialLinear,
    pub vcfg: ViTConfig,
}

impl SerialViT {
    pub fn new(vcfg: ViTConfig, seed: u64) -> Self {
        Self {
            embed: SerialLinear::new(vcfg.patch_dim, vcfg.body.hidden, true, seed, PID_EMBED),
            body: SerialTransformer::new(vcfg.body, true, seed, 0),
            head: SerialLinear::new(vcfg.body.hidden, vcfg.classes, true, seed, PID_HEAD),
            vcfg,
        }
    }

    /// `x`: `[b·s, patch_dim]` → `[b, classes]` logits.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let s = self.vcfg.body.seq;
        let e = self.embed.forward(x);
        let feats = self.body.forward(&e);
        let b = feats.rows() / s;
        let mut pool = Matrix::zeros(b, feats.cols());
        for si in 0..b {
            for r in si * s..(si + 1) * s {
                for (acc, &v) in pool.row_mut(si).iter_mut().zip(feats.row(r).iter()) {
                    *acc += v / s as f32;
                }
            }
        }
        self.head_forward(&pool)
    }

    fn head_forward(&mut self, pool: &Matrix) -> Matrix {
        self.head.forward(pool)
    }

    pub fn backward(&mut self, d_logits: &Matrix) {
        let s = self.vcfg.body.seq;
        let d_pool = self.head.backward(d_logits);
        let b = d_pool.rows();
        let mut d_feats = Matrix::zeros(b * s, d_pool.cols());
        for si in 0..b {
            for r in si * s..(si + 1) * s {
                for (dst, &v) in d_feats.row_mut(r).iter_mut().zip(d_pool.row(si).iter()) {
                    *dst = v / s as f32;
                }
            }
        }
        let d_embed = self.body.backward(&d_feats);
        let _ = self.embed.backward(&d_embed);
    }

    pub fn zero_grad(&mut self) {
        self.embed.zero_grad();
        self.body.zero_grad();
        self.head.zero_grad();
    }
}

/// Distributed softmax cross-entropy over column-split logits.
///
/// All-gathers the `[b_local, classes/q]` blocks along the grid row (the
/// class dimension is small, so this is cheap — the same strategy
/// Megatron's vocab-parallel loss uses), computes loss and gradient on the
/// full local rows, and returns this rank's gradient block scaled by
/// `1/global_batch` so it matches the serial mean-reduction.
///
/// Returns `(sum of -log p over local samples, local grad block,
/// argmax-correct count over local samples)`.
pub fn distributed_cross_entropy(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    logits_local: &Arc<DenseTensor>,
    labels_local: &[usize],
    global_batch: usize,
) -> (f32, DenseTensor, usize) {
    let q = grid.shape.q;
    // Zero-copy gather: each rank's logits block is deposited once and read
    // through `Arc`s; only the column-concat below materializes new data.
    let parts = grid.row.all_gather_shared(ctx, Arc::clone(logits_local));
    let mats: Vec<Matrix> = parts.iter().map(|p| p.matrix().clone()).collect();
    let full = Matrix::concat_cols(&mats);
    assert_eq!(full.rows(), labels_local.len(), "labels must cover local samples");

    let probs = nn::softmax_rows(&full);
    let mut loss_sum = 0.0f32;
    let mut grad_full = probs.clone();
    for (r, &label) in labels_local.iter().enumerate() {
        loss_sum -= probs[(r, label)].max(1e-12).ln();
        grad_full[(r, label)] -= 1.0;
    }
    grad_full.scale_assign(1.0 / global_batch as f32);
    let correct = nn::count_correct(&full, labels_local);

    let cols = full.cols() / q;
    let j = grid.j();
    let grad_local = grad_full.slice_cols(j * cols, (j + 1) * cols);
    (loss_sum, DenseTensor::from_matrix(grad_local), correct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_comm::Cluster;
    use tesseract_core::partition::{a_block, combine_c};
    use tesseract_core::GridShape;
    use tesseract_tensor::{assert_slices_close, Xoshiro256StarStar};

    fn vcfg() -> ViTConfig {
        ViTConfig {
            body: TransformerConfig {
                batch: 4,
                seq: 3,
                hidden: 8,
                heads: 2,
                mlp_ratio: 2,
                layers: 1,
                eps: 1e-5,
            },
            patch_dim: 4,
            classes: 6,
        }
    }

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn tesseract_vit_logits_match_serial() {
        let v = vcfg();
        let x = random(v.body.rows(), v.patch_dim, 1);
        let mut serial = SerialViT::new(v, 5);
        let y_ser = serial.forward(&x);
        for shape in [GridShape::new(1, 1), GridShape::new(2, 1), GridShape::new(2, 2)] {
            let out = Cluster::a100(shape.size()).run(|ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let (i, j, k) = grid.coords;
                let mut vit = TesseractViT::<DenseTensor>::new(ctx, &grid, v, 5);
                let x_loc = Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
                vit.forward(&grid, ctx, &x_loc).matrix().clone()
            });
            let got = combine_c(&out.results, shape);
            assert_slices_close(got.data(), y_ser.data(), 5e-4);
        }
    }

    #[test]
    fn distributed_ce_matches_serial_loss_and_grad() {
        let v = vcfg();
        let logits = random(v.body.batch, v.classes, 9);
        let labels = vec![0usize, 3, 5, 2];
        let (loss_ser, grad_ser) = nn::softmax_cross_entropy(&logits, &labels);

        let shape = GridShape::new(2, 2);
        let labels_for_test = labels.clone();
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let (i, j, k) = grid.coords;
            // Logits are A-type: rows split by h = i + kq, cols by j.
            let loc = Arc::new(DenseTensor::from_matrix(a_block(&logits, shape, i, j, k)));
            let h = grid.a_row_block();
            let per = v.body.batch / (shape.q * shape.d);
            let my_labels = &labels_for_test[h * per..(h + 1) * per];
            let (loss_sum, grad, correct) =
                distributed_cross_entropy(&grid, ctx, &loc, my_labels, v.body.batch);
            (loss_sum, grad.into_matrix(), correct)
        });
        // Sum of local loss sums over one row representative (j = 0) per
        // band equals batch · serial mean loss.
        let mut loss_total = 0.0;
        let mut correct_total = 0;
        for off in 0..shape.size() {
            let (i, j, k) = shape.coords_of(off);
            let _ = i;
            if j == 0 {
                loss_total += out.results[off].0;
                correct_total += out.results[off].2;
                let _ = k;
            }
        }
        assert!((loss_total / v.body.batch as f32 - loss_ser).abs() < 1e-5);
        assert!(correct_total <= v.body.batch);
        // Gradients assemble to the serial gradient.
        let grads: Vec<Matrix> = out.results.iter().map(|(_, g, _)| g.clone()).collect();
        let grad_full = combine_c(&grads, shape);
        assert_slices_close(grad_full.data(), grad_ser.data(), 1e-5);
    }

    #[test]
    fn vit_backward_produces_depth_synced_grads() {
        let v = vcfg();
        let x = random(v.body.rows(), v.patch_dim, 11);
        let dlogits = random(v.body.batch, v.classes, 12);
        let shape = GridShape::new(2, 2);
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let (i, j, k) = grid.coords;
            let mut vit = TesseractViT::<DenseTensor>::new(ctx, &grid, v, 5);
            let x_loc = Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
            let _ = vit.forward(&grid, ctx, &x_loc);
            let dl = Arc::new(DenseTensor::from_matrix(a_block(&dlogits, shape, i, j, k)));
            vit.backward(&grid, ctx, &dl);
            vit.embed.weight_grad().clone().into_matrix()
        });
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(
                    out.results[shape.offset_of(i, j, 0)],
                    out.results[shape.offset_of(i, j, 1)],
                    "embed grads must be depth-synchronized"
                );
            }
        }
    }
}
