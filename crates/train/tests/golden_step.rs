//! Golden-value regression test for the Module refactor: one AdamW step of
//! the dense ViT on the `[2, 2, 2]` grid must stay **bitwise** identical to
//! the values captured when the test was written, and the shadow backend's
//! flop/byte accounting for a Transformer fwd+bwd must not drift. Any
//! refactor of the layer stack that changes numerics (or the metered cost
//! model) trips this immediately.

use tesseract_comm::Cluster;
use tesseract_core::partition::a_block;
use tesseract_core::{GridShape, Module, TesseractGrid, TesseractTransformer, TransformerConfig};
use tesseract_tensor::{DenseTensor, Meter, ShadowTensor, TensorLike};
use tesseract_train::vit::{distributed_cross_entropy, TesseractViT, ViTConfig};
use tesseract_train::AdamW;

fn vcfg() -> ViTConfig {
    ViTConfig {
        body: TransformerConfig {
            batch: 4,
            seq: 3,
            hidden: 8,
            heads: 2,
            mlp_ratio: 2,
            layers: 1,
            eps: 1e-5,
        },
        patch_dim: 4,
        classes: 8,
    }
}

/// Rank 0's fingerprint of one training step, as f32 bit patterns.
struct Fingerprint {
    logits_row0: Vec<u32>,
    loss: u32,
    embed_w00: u32,
    head_w00: u32,
    mlp_fc1_w00: u32,
}

fn run_step() -> Fingerprint {
    let v = vcfg();
    let shape = GridShape::new(2, 2);
    let ds =
        tesseract_train::SyntheticVisionDataset::new(v.classes, v.body.seq, v.patch_dim, 0.3, 7);
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let mut model = TesseractViT::<DenseTensor>::new(ctx, &grid, v, 42);
        let mut opt: AdamW<DenseTensor> = AdamW::new(3e-3, 0.3);
        let b = v.body.batch;
        let (x, labels) = ds.batch_for_step(b, 1234, 0);
        let x_loc = std::sync::Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
        let per = b / (shape.q * shape.d);
        let h = grid.a_row_block();
        let my_labels = &labels[h * per..(h + 1) * per];
        let logits = model.forward(&grid, ctx, &x_loc);
        let (loss_local, dlogits, _) = distributed_cross_entropy(&grid, ctx, &logits, my_labels, b);
        let _ = model.backward(&grid, ctx, &std::sync::Arc::new(dlogits));
        opt.step(&mut Meter::new(), &mut model);
        model.zero_grad();
        let logits_row0: Vec<u32> = logits.matrix().row(0).iter().map(|f| f.to_bits()).collect();
        let embed_w00 = model.embed.weight().matrix()[(0, 0)].to_bits();
        let head_w00 = model.head.weight().matrix()[(0, 0)].to_bits();
        let mut mlp_fc1_w00 = 0u32;
        let mut idx = 0;
        model.visit_params(&mut |pr| {
            // Visit order: embed(w,b), attn wqkv, wo, mlp fc1 (index 4 on
            // row-0 ranks carrying biases), …; grab fc1's [0,0] entry.
            if idx == 4 {
                mlp_fc1_w00 = pr.weight.matrix()[(0, 0)].to_bits();
            }
            idx += 1;
        });
        Fingerprint { logits_row0, loss: loss_local.to_bits(), embed_w00, head_w00, mlp_fc1_w00 }
    });
    out.results.into_iter().next().expect("rank 0 fingerprint")
}

mod golden {
    /// Rank 0's `[b/(dq), classes/q]` logits block, row 0, bit patterns.
    pub const LOGITS_ROW0: [u32; 4] = [3218465214, 1040834800, 984450560, 1071279441];
    /// Rank 0's local cross-entropy loss sum.
    pub const LOSS: u32 = 1081829981;
    /// Post-step `embed.weight()[(0, 0)]`.
    pub const EMBED_W00: u32 = 3198730879;
    /// Post-step `head.weight()[(0, 0)]`.
    pub const HEAD_W00: u32 = 1050329089;
    /// Post-step MLP fc1 weight `[(0, 0)]` (5th visited parameter).
    pub const MLP_FC1_W00: u32 = 3195770600;
    /// Shadow Transformer fwd+bwd on `[2, 2, 2]`: rank 0's metered flops
    /// (f64 bit pattern).
    pub const SHADOW_FLOPS: u64 = 4634766966517661696;
    /// …and metered bytes allocated.
    pub const SHADOW_BYTES: u64 = 312;
}

#[test]
#[ignore = "generator: prints fresh golden values"]
fn print_goldens() {
    let fp = run_step();
    println!("LOGITS_ROW0: {:?}", fp.logits_row0);
    println!("LOSS: {}", fp.loss);
    println!("EMBED_W00: {}", fp.embed_w00);
    println!("HEAD_W00: {}", fp.head_w00);
    println!("MLP_FC1_W00: {}", fp.mlp_fc1_w00);
    let (flops, bytes) = shadow_counters();
    println!("SHADOW_FLOPS: {flops}");
    println!("SHADOW_BYTES: {bytes}");
}

#[test]
fn dense_vit_step_is_bitwise_stable() {
    let fp = run_step();
    assert_eq!(fp.logits_row0.as_slice(), golden::LOGITS_ROW0.as_slice(), "logits drifted");
    assert_eq!(fp.loss, golden::LOSS, "loss drifted");
    assert_eq!(fp.embed_w00, golden::EMBED_W00, "post-step embed weight drifted");
    assert_eq!(fp.head_w00, golden::HEAD_W00, "post-step head weight drifted");
    assert_eq!(fp.mlp_fc1_w00, golden::MLP_FC1_W00, "post-step fc1 weight drifted");
}

fn shadow_counters() -> (u64, u64) {
    let cfg = vcfg().body;
    let shape = GridShape::new(2, 2);
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let mut model = TesseractTransformer::<ShadowTensor>::new(ctx, &grid, cfg, true, 42, 0);
        let rows = cfg.rows() / (shape.q * shape.d);
        let x = std::sync::Arc::new(ShadowTensor::zeros(rows, cfg.hidden / shape.q));
        let y = model.forward(&grid, ctx, &x);
        let _ = model.backward(&grid, ctx, &y);
        (ctx.meter.flops.to_bits(), ctx.meter.bytes_allocated)
    });
    out.results.into_iter().next().expect("rank 0 counters")
}

#[test]
fn shadow_step_accounting_is_stable() {
    let (flops, bytes) = shadow_counters();
    assert_eq!(flops, golden::SHADOW_FLOPS, "shadow flop accounting drifted");
    assert_eq!(bytes, golden::SHADOW_BYTES, "shadow byte accounting drifted");
}
