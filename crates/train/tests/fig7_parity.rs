//! Figure-7 behaviour at test scale: training the same ViT with the same
//! seeds on (1) a single device, (2) Tesseract `[2,2,1]` and (3) Tesseract
//! `[2,2,2]` produces coinciding loss/accuracy trajectories — "Tesseract
//! does not affect the model's accuracy" (§4.3).

use tesseract_core::{GridShape, TransformerConfig};
use tesseract_train::{
    train_serial, train_tesseract, SyntheticVisionDataset, TrainSettings, ViTConfig,
};

fn vcfg() -> ViTConfig {
    ViTConfig {
        body: TransformerConfig {
            batch: 8,
            seq: 3,
            hidden: 8,
            heads: 2,
            mlp_ratio: 2,
            layers: 1,
            eps: 1e-5,
        },
        patch_dim: 4,
        classes: 4,
    }
}

fn settings() -> TrainSettings {
    TrainSettings {
        epochs: 2,
        steps_per_epoch: 6,
        lr: 3e-3,
        weight_decay: 0.3,
        seed: 42,
        data_seed: 99,
        clip_grad_norm: None,
    }
}

#[test]
fn training_curves_coincide_across_arrangements() {
    let v = vcfg();
    let s = settings();
    let ds = SyntheticVisionDataset::new(v.classes, v.body.seq, v.patch_dim, 0.3, 7);

    let serial = train_serial(v, &ds, s);
    let t111 = train_tesseract(GridShape::new(1, 1), v, &ds, s);
    let t221 = train_tesseract(GridShape::new(2, 1), v, &ds, s);
    let t222 = train_tesseract(GridShape::new(2, 2), v, &ds, s);

    assert_eq!(serial.epochs.len(), 2);
    for (name, run) in [("[1,1,1]", &t111), ("[2,2,1]", &t221), ("[2,2,2]", &t222)] {
        for (e, (a, b)) in serial.epochs.iter().zip(run.epochs.iter()).enumerate() {
            assert!(
                (a.loss - b.loss).abs() < 5e-3,
                "{name} epoch {e}: serial loss {} vs {}",
                a.loss,
                b.loss
            );
            assert!(
                (a.accuracy - b.accuracy).abs()
                    <= 1.0 / (s.steps_per_epoch * v.body.batch) as f32 + 1e-6,
                "{name} epoch {e}: serial acc {} vs {}",
                a.accuracy,
                b.accuracy
            );
        }
    }
}

#[test]
fn training_actually_learns() {
    // The dataset is learnable; the loss must drop and accuracy must beat
    // chance by the end (sanity for the Figure-7 harness itself).
    let v = vcfg();
    let s = TrainSettings { epochs: 4, steps_per_epoch: 8, ..settings() };
    let ds = SyntheticVisionDataset::new(v.classes, v.body.seq, v.patch_dim, 0.2, 7);
    let report = train_serial(v, &ds, s);
    let first = report.epochs.first().unwrap();
    let last = report.epochs.last().unwrap();
    assert!(last.loss < first.loss, "loss must decrease: {} -> {}", first.loss, last.loss);
    assert!(
        last.accuracy > 0.5,
        "accuracy must beat 25% chance substantially, got {}",
        last.accuracy
    );
}

#[test]
fn tesseract_run_is_deterministic() {
    let v = vcfg();
    let s = settings();
    let ds = SyntheticVisionDataset::new(v.classes, v.body.seq, v.patch_dim, 0.3, 7);
    let a = train_tesseract(GridShape::new(2, 1), v, &ds, s);
    let b = train_tesseract(GridShape::new(2, 1), v, &ds, s);
    assert_eq!(a.epochs, b.epochs);
}
