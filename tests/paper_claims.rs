//! The paper's quantitative claims as executable assertions, at reduced
//! scale where a claim needs a cluster run (full scale lives in the bench
//! binaries; see EXPERIMENTS.md).

use tesseract_repro::comm::{Cluster, CostParams, Topology};
use tesseract_repro::core::analysis;
use tesseract_repro::core::{
    GridShape, Module, TesseractGrid, TesseractTransformer, TransformerConfig,
};
use tesseract_repro::tensor::ShadowTensor;

/// §1: "the communication needed for Cannon's Algorithm is 31.5 times the
/// communication needed for Tesseract, and ... the 2.5D algorithm is 3.75
/// times" (p = 64).
#[test]
fn intro_ratio_claims() {
    let cannon = analysis::transmissions_cannon(64);
    let d25 = analysis::transmissions_25d(64);
    let tess = analysis::transmissions_tesseract_cube(64);
    assert!((cannon / tess - 31.5).abs() < 1e-9);
    assert!((d25 / tess - 3.75).abs() < 1e-9);
}

/// §3.1: transmission formulas at d = q: Cannon `2p^{3/2} − 2p^{1/2}`,
/// 2.5-D `2p − 2p^{1/3}`, Tesseract `2p^{2/3}` — hand-evaluated points.
#[test]
fn transmission_formula_spot_values() {
    assert!((analysis::transmissions_cannon(64) - (2.0 * 512.0 - 2.0 * 8.0)).abs() < 1e-9);
    assert!((analysis::transmissions_25d(64) - (128.0 - 8.0)).abs() < 1e-9);
    assert!((analysis::transmissions_tesseract_cube(64) - 32.0).abs() < 1e-9);
}

/// Eq. 7–10: Tesseract allocates less per-GPU memory than Megatron-LM on
/// activation-dominated matmuls, for every arrangement with p > 1.
#[test]
fn memory_model_tesseract_wins() {
    let (a, b, c) = (6144, 3072, 12288);
    for (q, d) in [(2usize, 1usize), (2, 2), (4, 2), (4, 4), (8, 1)] {
        let p = q * q * d;
        assert!(
            analysis::memory_tesseract(a, b, c, q, d) < analysis::memory_megatron(a, b, c, p),
            "[{q},{q},{d}]"
        );
    }
}

fn step_time(shape: GridShape, cfg: TransformerConfig, params: CostParams) -> f64 {
    let cluster = Cluster::custom(shape.size(), Topology::meluxina(), params);
    cluster
        .run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let mut model = TesseractTransformer::<ShadowTensor>::new(ctx, &grid, cfg, true, 0, 0);
            let x = std::sync::Arc::new(ShadowTensor::new(
                cfg.rows() / (shape.q * shape.d),
                cfg.hidden / shape.q,
            ));
            let y = model.forward(&grid, ctx, &x);
            let _ = model.backward(&grid, ctx, &y);
            ctx.flush_compute();
        })
        .makespan()
}

/// §4.1/§4.2 core finding: at equal processor count, larger depth is
/// faster ([4,4,4] beats [8,8,1]; [2,2,4] beats [4,4,1]).
#[test]
fn greater_depth_wins_at_equal_p() {
    let cfg = TransformerConfig {
        batch: 32,
        seq: 128,
        hidden: 1024,
        heads: 16,
        mlp_ratio: 4,
        layers: 2,
        eps: 1e-5,
    };
    let t44 = step_time(GridShape::new(4, 4), cfg, CostParams::a100_cluster());
    let t88 = step_time(GridShape::new(8, 1), cfg, CostParams::a100_cluster());
    assert!(t44 < t88, "[4,4,4] {t44} must beat [8,8,1] {t88}");
    let t224 = step_time(GridShape::new(2, 4), cfg, CostParams::a100_cluster());
    let t441 = step_time(GridShape::new(4, 1), cfg, CostParams::a100_cluster());
    assert!(t224 < t441, "[2,2,4] {t224} must beat [4,4,1] {t441}");
}

/// §3.1: the depth advantage is a *communication* effect — with free
/// communication the arrangements tie (compute is identical up to
/// per-rank attention loop granularity).
#[test]
fn depth_advantage_vanishes_without_communication() {
    let cfg = TransformerConfig {
        batch: 32,
        seq: 128,
        hidden: 1024,
        heads: 16,
        mlp_ratio: 4,
        layers: 2,
        eps: 1e-5,
    };
    let params = CostParams::a100_cluster();
    let free = params.free_comm();
    let t44 = step_time(GridShape::new(4, 4), cfg, free);
    let t88 = step_time(GridShape::new(8, 1), cfg, free);
    // A residual gap remains because a q = 8 SUMMA step issues 2× the
    // kernel launches of a q = 4 step; it is far smaller than the gap with
    // real communication.
    let free_gap = (t88 - t44) / t44;
    let real_gap = (step_time(GridShape::new(8, 1), cfg, params)
        - step_time(GridShape::new(4, 4), cfg, params))
        / step_time(GridShape::new(4, 4), cfg, params);
    assert!(free_gap < 0.4, "free-comm times must be close: {t44} vs {t88}");
    assert!(real_gap > 2.0 * free_gap, "communication must dominate the depth advantage");
}

/// Eq. 12: efficiency decreases with processors and increases with work.
#[test]
fn efficiency_relation() {
    let w = 1e12;
    assert!(analysis::efficiency(w, 64, 1e-3) < analysis::efficiency(w, 4, 1e-3));
    assert!(analysis::efficiency(10.0 * w, 64, 1e-3) > analysis::efficiency(w, 64, 1e-3));
}

/// Eq. 4/5 ordering: replication relaxes both lower bounds.
#[test]
fn lower_bounds_relax_with_depth() {
    for d in [2usize, 4] {
        let (w1, s1) = analysis::lower_bounds_25d(4096, 64, 1);
        let (wd, sd) = analysis::lower_bounds_25d(4096, 64, d);
        assert!(wd < w1);
        assert!(sd < s1);
    }
}
