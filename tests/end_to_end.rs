//! Workspace-level integration tests spanning all crates: the full system
//! assembled the way a downstream user would use it.

use tesseract_repro::baselines::serial::SerialTransformer;
use tesseract_repro::comm::Cluster;
use tesseract_repro::core::partition::{a_block, combine_c};
use tesseract_repro::core::{
    GridShape, Module, TesseractGrid, TesseractTransformer, TransformerConfig,
};
use tesseract_repro::tensor::{
    assert_slices_close, DenseTensor, Matrix, Meter, ShadowTensor, Xoshiro256StarStar,
};
use tesseract_repro::train::{
    train_tesseract, AdamW, Lamb, Lars, Sgd, SyntheticVisionDataset, TrainSettings, ViTConfig,
};

const SEED: u64 = 314;

fn cfg() -> TransformerConfig {
    TransformerConfig { batch: 4, seq: 4, hidden: 8, heads: 2, mlp_ratio: 2, layers: 2, eps: 1e-5 }
}

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

#[test]
fn two_layer_stack_parity_across_all_grids() {
    let c = cfg();
    let x = random(c.rows(), c.hidden, 1);
    let mut serial = SerialTransformer::new(c, true, SEED, 0);
    let y_ser = serial.forward(&x);
    for shape in
        [GridShape::new(1, 1), GridShape::new(2, 1), GridShape::new(2, 2), GridShape::new(1, 4)]
    {
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let (i, j, k) = grid.coords;
            let mut model = TesseractTransformer::<DenseTensor>::new(ctx, &grid, c, true, SEED, 0);
            let x_loc = std::sync::Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
            model.forward(&grid, ctx, &x_loc).matrix().clone()
        });
        let y = combine_c(&out.results, shape);
        assert_slices_close(y.data(), y_ser.data(), 5e-4);
    }
}

#[test]
fn shadow_and_dense_runs_report_identical_simulated_time() {
    // The property that legitimizes paper-scale shadow timing: identical
    // clocks and identical wire bytes on the same configuration.
    let c = cfg();
    let shape = GridShape::new(2, 2);
    let x = random(c.rows(), c.hidden, 2);
    let dense = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let mut model = TesseractTransformer::<DenseTensor>::new(ctx, &grid, c, true, SEED, 0);
        let x_loc = std::sync::Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
        let y = model.forward(&grid, ctx, &x_loc);
        let _ = model.backward(&grid, ctx, &y);
        ctx.flush_compute();
    });
    let shadow = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let mut model = TesseractTransformer::<ShadowTensor>::new(ctx, &grid, c, true, SEED, 0);
        let x_loc = std::sync::Arc::new(ShadowTensor::new(
            c.rows() / (shape.q * shape.d),
            c.hidden / shape.q,
        ));
        let y = model.forward(&grid, ctx, &x_loc);
        let _ = model.backward(&grid, ctx, &y);
        ctx.flush_compute();
    });
    assert!((dense.makespan() - shadow.makespan()).abs() < 1e-12);
    assert_eq!(dense.comm.total_wire_bytes(), shadow.comm.total_wire_bytes());
    assert_eq!(dense.comm.total_calls(), shadow.comm.total_calls());
}

#[test]
fn every_optimizer_trains_the_distributed_transformer() {
    // One step with each optimizer must change weights and keep depth
    // replicas synchronized.
    let c = cfg();
    let shape = GridShape::new(2, 2);
    let x = random(c.rows(), c.hidden, 3);
    let dy = random(c.rows(), c.hidden, 4);
    for opt_name in ["sgd", "adamw", "lamb", "lars"] {
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let (i, j, k) = grid.coords;
            let mut model = TesseractTransformer::<DenseTensor>::new(ctx, &grid, c, true, SEED, 0);
            let x_loc = std::sync::Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
            let dy_loc =
                std::sync::Arc::new(DenseTensor::from_matrix(a_block(&dy, shape, i, j, k)));
            let _ = model.forward(&grid, ctx, &x_loc);
            let _ = model.backward(&grid, ctx, &dy_loc);
            let mut m = Meter::new();
            match opt_name {
                "sgd" => Sgd::<DenseTensor>::new(0.01, 0.9, 0.0).step(&mut m, &mut model),
                "adamw" => AdamW::<DenseTensor>::new(0.01, 0.1).step(&mut m, &mut model),
                "lamb" => Lamb::<DenseTensor>::new(0.01, 0.1).step(&mut m, &mut model),
                _ => Lars::<DenseTensor>::new(0.5, 0.0).step(&mut m, &mut model),
            }
            let mut first_w = None;
            model.visit_params(&mut |pr| {
                if first_w.is_none() {
                    first_w = Some(pr.weight.clone().into_matrix());
                }
            });
            first_w.unwrap()
        });
        // Updated weights must still be depth-replicated.
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(
                    out.results[shape.offset_of(i, j, 0)],
                    out.results[shape.offset_of(i, j, 1)],
                    "{opt_name}: depth replicas diverged"
                );
            }
        }
    }
}

#[test]
fn vit_training_improves_under_every_grid() {
    let vcfg = ViTConfig {
        body: TransformerConfig {
            batch: 8,
            seq: 3,
            hidden: 8,
            heads: 2,
            mlp_ratio: 2,
            layers: 1,
            eps: 1e-5,
        },
        patch_dim: 4,
        classes: 4,
    };
    let s = TrainSettings {
        epochs: 3,
        steps_per_epoch: 6,
        lr: 3e-3,
        weight_decay: 0.1,
        seed: 11,
        data_seed: 22,
        clip_grad_norm: None,
    };
    let ds = SyntheticVisionDataset::new(vcfg.classes, vcfg.body.seq, vcfg.patch_dim, 0.2, 5);
    for shape in [GridShape::new(2, 1), GridShape::new(2, 2)] {
        let report = train_tesseract(shape, vcfg, &ds, s);
        let first = report.epochs.first().unwrap().loss;
        let last = report.epochs.last().unwrap().loss;
        assert!(last < first, "loss must drop on {shape:?}: {first} -> {last}");
    }
}

#[test]
fn makespan_accounting_is_consistent() {
    // compute + comm decomposition must bound the makespan.
    let c = cfg();
    let shape = GridShape::new(2, 1);
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let mut model = TesseractTransformer::<ShadowTensor>::new(ctx, &grid, c, true, SEED, 0);
        let x = std::sync::Arc::new(ShadowTensor::new(c.rows() / shape.q, c.hidden / shape.q));
        let y = model.forward(&grid, ctx, &x);
        let _ = model.backward(&grid, ctx, &y);
        ctx.flush_compute();
    });
    let makespan = out.makespan();
    assert!(makespan > 0.0);
    for r in &out.reports {
        assert!(r.compute_time >= 0.0 && r.comm_time >= 0.0);
        assert!((r.compute_time + r.comm_time - r.virtual_time).abs() < 1e-9);
        assert!(r.flops > 0.0);
    }
}
