//! A full Tesseract-parallel Transformer layer (paper §3.2): forward and
//! backward on a `[2, 2, 2]` grid, verified against the independent serial
//! reference, with the per-scheme communication volumes compared against
//! Megatron-LM 1-D on the same problem.
//!
//! Run: `cargo run --release --example transformer_layer`

use tesseract_repro::baselines::megatron::{MegatronTransformerLayer, MegatronWorld};
use tesseract_repro::baselines::serial::SerialTransformerLayer;
use tesseract_repro::comm::Cluster;
use tesseract_repro::core::partition::{a_block, combine_c};
use tesseract_repro::core::{
    GridShape, Module, TesseractGrid, TesseractTransformerLayer, TransformerConfig,
};
use tesseract_repro::tensor::{max_rel_diff, DenseTensor, Matrix, Xoshiro256StarStar};

fn main() {
    let cfg = TransformerConfig {
        batch: 4,
        seq: 6,
        hidden: 16,
        heads: 4,
        mlp_ratio: 4,
        layers: 1,
        eps: 1e-5,
    };
    let seed = 2022;
    let mut rng = Xoshiro256StarStar::seed_from_u64(9);
    let x = Matrix::random_uniform(cfg.rows(), cfg.hidden, -1.0, 1.0, &mut rng);
    let dy = Matrix::random_uniform(cfg.rows(), cfg.hidden, -1.0, 1.0, &mut rng);

    // Serial oracle.
    let mut serial = SerialTransformerLayer::new(cfg, true, seed, 0);
    let y_ser = serial.forward(&x);
    let dx_ser = serial.backward(&dy);

    // Tesseract [2,2,2].
    let shape = GridShape::new(2, 2);
    let tess = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let mut layer =
            TesseractTransformerLayer::<DenseTensor>::new(ctx, &grid, cfg, true, seed, 0);
        let x_loc = std::sync::Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
        let dy_loc = std::sync::Arc::new(DenseTensor::from_matrix(a_block(&dy, shape, i, j, k)));
        let y = layer.forward(&grid, ctx, &x_loc);
        let dx = layer.backward(&grid, ctx, &dy_loc);
        (y.matrix().clone(), dx.matrix().clone())
    });
    let y_tess = combine_c(&tess.results.iter().map(|(y, _)| y.clone()).collect::<Vec<_>>(), shape);
    let dx_tess =
        combine_c(&tess.results.iter().map(|(_, d)| d.clone()).collect::<Vec<_>>(), shape);

    println!("Tesseract [2,2,2] vs serial oracle:");
    println!("  forward  max rel err: {:.3e}", max_rel_diff(y_tess.data(), y_ser.data()));
    println!("  backward max rel err: {:.3e}", max_rel_diff(dx_tess.data(), dx_ser.data()));

    // Megatron-LM on 4 GPUs for comparison.
    let mega = Cluster::a100(4).run(|ctx| {
        let world = MegatronWorld::new(ctx, (0..4).collect());
        let mut layer = MegatronTransformerLayer::<DenseTensor>::new(&world, cfg, true, seed, 0);
        let x_full = std::sync::Arc::new(DenseTensor::from_matrix(x.clone()));
        let dy_full = std::sync::Arc::new(DenseTensor::from_matrix(dy.clone()));
        let y = layer.forward(&world, ctx, &x_full);
        let dx = layer.backward(&world, ctx, &dy_full);
        (y.matrix().clone(), dx.matrix().clone())
    });
    let (y_mega, dx_mega) = &mega.results[0];
    println!("\nMegatron-LM [4] vs serial oracle:");
    println!("  forward  max rel err: {:.3e}", max_rel_diff(y_mega.data(), y_ser.data()));
    println!("  backward max rel err: {:.3e}", max_rel_diff(dx_mega.data(), dx_ser.data()));

    println!("\ncommunication, one fwd+bwd of this layer:");
    println!(
        "  Tesseract [2,2,2] (8 GPUs): {} bytes over {} collectives",
        tess.comm.total_wire_bytes(),
        tess.comm.total_calls()
    );
    println!(
        "  Megatron  [4]     (4 GPUs): {} bytes over {} collectives",
        mega.comm.total_wire_bytes(),
        mega.comm.total_calls()
    );
    println!("\nAll schemes compute the same function — the difference is where the");
    println!("data lives and what must be communicated (paper §3).");
}
