//! Figure-7 style experiment at example scale: train the same Vision
//! Transformer on the synthetic ImageNet-100 substitute, single-device vs
//! Tesseract `[2,2,2]`, and print the coinciding accuracy curves.
//!
//! Run: `cargo run --release --example vit_training`

use tesseract_repro::core::{GridShape, TransformerConfig};
use tesseract_repro::train::{
    train_serial, train_tesseract, SyntheticVisionDataset, TrainSettings, ViTConfig,
};

fn main() {
    let vcfg = ViTConfig {
        body: TransformerConfig {
            batch: 16,
            seq: 4,
            hidden: 16,
            heads: 4,
            mlp_ratio: 2,
            layers: 2,
            eps: 1e-5,
        },
        patch_dim: 8,
        classes: 20,
    };
    let settings = TrainSettings {
        epochs: 6,
        steps_per_epoch: 10,
        lr: 3e-3,
        weight_decay: 0.3,
        seed: 42,
        data_seed: 555,
        clip_grad_norm: None,
    };
    let ds = SyntheticVisionDataset::new(vcfg.classes, vcfg.body.seq, vcfg.patch_dim, 0.3, 3);

    println!(
        "training a {}-class ViT (h={}, {} layers) two ways...\n",
        vcfg.classes, vcfg.body.hidden, vcfg.body.layers
    );
    let serial = train_serial(vcfg, &ds, settings);
    let tess = train_tesseract(GridShape::new(2, 2), vcfg, &ds, settings);

    println!("| epoch | single-GPU acc | [2,2,2] acc | single loss | [2,2,2] loss |");
    println!("|---|---|---|---|---|");
    for e in 0..settings.epochs {
        println!(
            "| {} | {:.4} | {:.4} | {:.4} | {:.4} |",
            e + 1,
            serial.epochs[e].accuracy,
            tess.epochs[e].accuracy,
            serial.epochs[e].loss,
            tess.epochs[e].loss,
        );
    }
    println!("\nTesseract trains the identical model: the curves coincide while the");
    println!("8-GPU arrangement holds 1/8th of the activations per device.");
}
