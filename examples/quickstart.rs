//! Quickstart: run one Tesseract 2.5-D matrix multiplication on a simulated
//! 8-GPU cluster (`[q=2, q=2, d=2]`), verify it against serial matmul, and
//! inspect the communication statistics.
//!
//! Run: `cargo run --release --example quickstart`

use tesseract_repro::comm::Cluster;
use tesseract_repro::core::mm::tesseract_matmul;
use tesseract_repro::core::partition::{a_block, b_block, combine_c};
use tesseract_repro::core::{GridShape, TesseractGrid};
use tesseract_repro::tensor::matmul::matmul;
use tesseract_repro::tensor::{max_rel_diff, DenseTensor, Matrix, Xoshiro256StarStar};

fn main() {
    // The arrangement: p = q²·d = 8 processors as 2 layers of 2×2 meshes.
    let shape = GridShape::new(2, 2);
    println!(
        "Tesseract quickstart: C = A x B on a [{}, {}, {}] grid ({} simulated GPUs)\n",
        shape.q,
        shape.q,
        shape.d,
        shape.size()
    );

    // Global problem: A [16, 8] x B [8, 12].
    let mut rng = Xoshiro256StarStar::seed_from_u64(42);
    let a = Matrix::random_uniform(16, 8, -1.0, 1.0, &mut rng);
    let b = Matrix::random_uniform(8, 12, -1.0, 1.0, &mut rng);

    // SPMD: each rank takes its Figure-4 block and runs Algorithm 3.
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let a_local = std::sync::Arc::new(DenseTensor::from_matrix(a_block(&a, shape, i, j, k)));
        let b_local = std::sync::Arc::new(DenseTensor::from_matrix(b_block(&b, shape, i, j)));
        tesseract_matmul(&grid, ctx, &a_local, &b_local).into_matrix()
    });

    // Combine the distributed C blocks and compare against serial matmul.
    let c_distributed = combine_c(&out.results, shape);
    let c_serial = matmul(&a, &b);
    let err = max_rel_diff(c_distributed.data(), c_serial.data());
    println!("max relative error vs serial matmul: {err:.3e}");
    assert!(err < 1e-5, "distributed result must match serial");

    println!("simulated time: {:.3} µs", out.makespan() * 1e6);
    println!("\ncollective traffic:\n{}", out.comm.render_table());
    println!("OK — Tesseract reproduced the serial product exactly.");
}
