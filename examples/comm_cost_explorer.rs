//! Interactive-style sweep over Tesseract arrangements: for a fixed
//! Transformer problem, print every legal `[q, q, d]` decomposition of a
//! GPU budget with its simulated step time and communication breakdown —
//! the tool a user would reach for to pick an arrangement ("Tesseract
//! offers a flexible depth and dimension which could help users use their
//! GPUs in the most efficient way", §1).
//!
//! Run: `cargo run --release --example comm_cost_explorer [gpu_budget]`

use tesseract_repro::comm::Cluster;
use tesseract_repro::core::{
    GridShape, Module, TesseractGrid, TesseractTransformer, TransformerConfig,
};
use tesseract_repro::tensor::ShadowTensor;

fn main() {
    let budget: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let cfg = TransformerConfig {
        batch: 64,
        seq: 256,
        hidden: 2048,
        heads: 32,
        mlp_ratio: 4,
        layers: 4,
        eps: 1e-5,
    };
    println!(
        "arrangements of up to {budget} GPUs for a Transformer (b={}, s={}, h={}, n={}, N={}):\n",
        cfg.batch, cfg.seq, cfg.hidden, cfg.heads, cfg.layers
    );
    println!("| arrangement | p | step time (s) | compute (s) | comm (s) | wire GB |");
    println!("|---|---|---|---|---|---|");

    let mut best: Option<(String, f64)> = None;
    for q in 1..=8usize {
        for d in 1..=8usize {
            let p = q * q * d;
            if p > budget || cfg.batch % (q * d) != 0 || cfg.heads % q != 0 || cfg.hidden % q != 0 {
                continue;
            }
            let shape = GridShape::new(q, d);
            let out = Cluster::a100(p).run(|ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let mut model =
                    TesseractTransformer::<ShadowTensor>::new(ctx, &grid, cfg, true, 0, 0);
                let x =
                    std::sync::Arc::new(ShadowTensor::new(cfg.rows() / (q * d), cfg.hidden / q));
                let y = model.forward(&grid, ctx, &x);
                let _ = model.backward(&grid, ctx, &y);
                ctx.flush_compute();
            });
            let label = format!("[{q},{q},{d}]");
            println!(
                "| {label} | {p} | {:.4} | {:.4} | {:.4} | {:.2} |",
                out.makespan(),
                out.max_compute_time(),
                out.max_comm_time(),
                out.comm.total_wire_bytes() as f64 / 1e9,
            );
            if best.as_ref().map(|(_, t)| out.makespan() < *t).unwrap_or(true) {
                best = Some((label, out.makespan()));
            }
        }
    }

    if let Some((label, t)) = best {
        println!("\nfastest arrangement within the budget: {label} at {t:.4} simulated s/step");
    }
}
