//! Figure 6 end-to-end: data parallelism × pipeline parallelism ×
//! Tesseract on 32 simulated GPUs, running a real (dense) training step
//! and verifying the data-parallel replicas stay synchronized.
//!
//! Run: `cargo run --release --example hybrid_parallelism`

use tesseract_repro::comm::Cluster;
use tesseract_repro::core::partition::a_block;
use tesseract_repro::core::TransformerConfig;
use tesseract_repro::hybrid::{HybridShape, HybridTransformer};
use tesseract_repro::tensor::{DenseTensor, Matrix, TensorLike, Xoshiro256StarStar};

fn main() {
    let shape = HybridShape::figure6(); // dp=2 x pp=2 x [2,2,2] = 32 GPUs
    println!("{}", shape.describe());

    let cfg = TransformerConfig {
        batch: 4, // per microbatch
        seq: 2,
        hidden: 8,
        heads: 2,
        mlp_ratio: 2,
        layers: 2, // one per pipeline stage
        eps: 1e-5,
    };
    let microbatches = 2;

    let mut rng = Xoshiro256StarStar::seed_from_u64(1);
    // One batch per (replica, microbatch).
    let inputs: Vec<Matrix> = (0..shape.dp * microbatches)
        .map(|_| Matrix::random_uniform(cfg.rows(), cfg.hidden, -1.0, 1.0, &mut rng))
        .collect();

    let grid_shape = shape.grid;
    let out = Cluster::a100(shape.total()).run(|ctx| {
        let mut engine = HybridTransformer::<DenseTensor>::new(ctx, shape, cfg, true, 7);
        let coords = engine.coords;
        let (i, j, k) = engine.grid.coords;
        let inputs = inputs.clone();
        let outputs = engine.train_step(
            ctx,
            microbatches,
            |m| {
                let global = &inputs[coords.dp_idx * microbatches + m];
                DenseTensor::from_matrix(a_block(global, grid_shape, i, j, k))
            },
            // Toy loss: L = sum(y) → dY = ones.
            |_ctx, y, _m| DenseTensor::from_matrix(Matrix::full(y.rows(), y.cols(), 1.0)),
        );
        // Expose the first parameter gradient for the sync check.
        let mut grad0 = None;
        engine.visit_params(&mut |pr| {
            if grad0.is_none() {
                grad0 = Some(pr.grad.clone().into_matrix());
            }
        });
        (coords, outputs.len(), grad0.unwrap())
    });

    println!("per-rank results (replica, stage, outputs produced):");
    for (coords, n_out, _) in &out.results {
        if coords.tess_offset == 0 {
            println!("  dp{} pp{}: {} last-stage outputs", coords.dp_idx, coords.pp_idx, n_out);
        }
    }

    // Verify the data-parallel all-reduce left replicas identical.
    let mut synced = true;
    for pp_idx in 0..shape.pp {
        for off in 0..shape.grid.size() {
            let grads: Vec<&Matrix> = out
                .results
                .iter()
                .filter(|(c, _, _)| c.pp_idx == pp_idx && c.tess_offset == off)
                .map(|(_, _, g)| g)
                .collect();
            synced &= grads.windows(2).all(|w| w[0] == w[1]);
        }
    }
    println!("\ndata-parallel replicas hold identical synced gradients: {synced}");
    println!("simulated step makespan: {:.3} µs", out.makespan() * 1e6);
    assert!(synced);
}
